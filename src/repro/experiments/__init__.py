"""Experiment harness: load sweeps, validation experiment definitions,
the tail-at-scale and power-management studies, the BigHouse
comparison, and the figure/table registry."""

from . import (
    audit,
    comparison,
    power_mgmt,
    registry,
    resilience,
    tail_at_scale,
    validation,
)
from .audit import audit_client
from .replication import ReplicatedPoint, replicate_at_load
from .loadsweep import (
    SweepPoint,
    load_latency_sweep,
    measure_at_load,
    saturation_load,
)

__all__ = [
    "ReplicatedPoint",
    "SweepPoint",
    "audit",
    "audit_client",
    "comparison",
    "load_latency_sweep",
    "measure_at_load",
    "power_mgmt",
    "registry",
    "replicate_at_load",
    "resilience",
    "saturation_load",
    "tail_at_scale",
    "validation",
]
