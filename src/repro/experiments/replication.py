"""Replicated measurements with convergence control.

BigHouse's methodology — run independent instances "until performance
metrics converge" — applied to full uqSim experiments: repeat a sweep
point with decorrelated seeds until the tail-latency estimate's
relative standard error drops below a tolerance, and report the
estimate with its confidence half-width. Use this when a single
measurement window is too noisy (short windows, high percentiles,
heavy-tailed services).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..apps.base import World
from ..errors import ReproError
from ..workload import RequestMix
from .loadsweep import SweepPoint, measure_at_load


@dataclass
class ReplicatedPoint:
    """Converged estimate for one offered load."""

    offered_qps: float
    p99_mean: float
    p99_stderr: float
    mean_mean: float
    throughput_mean: float
    replications: int
    converged: bool
    points: List[SweepPoint]

    @property
    def p99_ci95(self) -> float:
        """95% confidence half-width of the p99 estimate."""
        return 1.96 * self.p99_stderr


def replicate_at_load(
    build_world: Callable[..., World],
    qps: float,
    duration: float = 0.4,
    warmup: float = 0.1,
    mix: Optional[RequestMix] = None,
    min_replications: int = 3,
    max_replications: int = 12,
    tolerance: float = 0.1,
    seed: int = 1,
    **world_kwargs,
) -> ReplicatedPoint:
    """Repeat a measurement until the p99 estimate converges.

    Convergence: relative standard error of the per-replication p99
    values under *tolerance* (after *min_replications*). Replications
    use seeds ``seed + 10_007 * k`` so they are decorrelated but the
    whole call is reproducible.
    """
    if min_replications < 2:
        raise ReproError("need >= 2 replications to estimate spread")
    if max_replications < min_replications:
        raise ReproError("max_replications < min_replications")
    if not 0 < tolerance < 1:
        raise ReproError(f"tolerance must be in (0,1), got {tolerance!r}")

    points: List[SweepPoint] = []
    converged = False
    for k in range(max_replications):
        point = measure_at_load(
            build_world, qps, duration, warmup, mix,
            seed=seed + 10_007 * k, **world_kwargs,
        )
        points.append(point)
        if len(points) >= min_replications:
            p99s = np.array([p.p99 for p in points])
            mean = p99s.mean()
            stderr = p99s.std(ddof=1) / np.sqrt(len(p99s))
            if mean > 0 and stderr / mean < tolerance:
                converged = True
                break
    p99s = np.array([p.p99 for p in points])
    return ReplicatedPoint(
        offered_qps=qps,
        p99_mean=float(p99s.mean()),
        p99_stderr=float(p99s.std(ddof=1) / np.sqrt(len(p99s))),
        mean_mean=float(np.mean([p.mean for p in points])),
        throughput_mean=float(np.mean([p.throughput for p in points])),
        replications=len(points),
        converged=converged,
        points=points,
    )
