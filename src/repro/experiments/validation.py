"""Declarative definitions of every validation experiment (SSIV).

Each ``figN_*`` function runs the simulated AND "real" (testbed
surrogate, DESIGN.md SS1) sides of one paper figure and returns the
series the figure plots. Load grids and measurement windows default to
values that finish in minutes on a laptop; pass denser grids / longer
windows for higher-fidelity runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..apps import (
    fanout,
    load_balanced,
    social_network,
    three_tier,
    thrift_echo,
    two_tier,
)
from ..telemetry.tracing import TraceConfig
from ..testbed import RealismConfig
from .loadsweep import SweepPoint, load_latency_sweep

SweepPair = Dict[str, List[SweepPoint]]

RunDir = Optional[Union[str, Path]]


def _real_and_sim(
    build_world: Callable,
    loads: Sequence[float],
    duration: float,
    warmup: float,
    seed: int,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    experiment: str = "pair",
    audit: bool = False,
    retries: int = 0,
    timeout: Optional[float] = None,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
    slo: Optional[str] = None,
    scrape_interval: Optional[float] = None,
    shards: int = 1,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    **world_kwargs,
) -> SweepPair:
    """Run the same sweep with and without the realism layer.

    Both sides share *run_dir* when given: the journal is append-only
    and keys embed ``{experiment}/sim`` vs ``{experiment}/real``, so a
    whole multi-sweep figure checkpoints into one directory. With
    *trace_dir* set, both sides export per-load Perfetto/OTLP traces
    under ``{trace_dir}/{experiment}/{side}``, sampled at
    *trace_sample*. With ``shards > 1`` both sides run on the sharded
    parallel core through the builder's adapter runner
    (:mod:`repro.shard.adapter`); telemetry still merges at the root.
    """
    durable = dict(
        run_dir=run_dir, resume=resume, audit=audit, retries=retries,
        timeout=timeout, slo=slo, scrape_interval=scrape_interval,
        shards=shards, shard_timeout=shard_timeout,
        shard_restarts=shard_restarts,
    )

    def tracing(side: str) -> dict:
        if trace_dir is None:
            return {}
        return {
            "trace": TraceConfig(sample_rate=trace_sample),
            "trace_dir": Path(trace_dir) / experiment / side,
        }

    sim_points = load_latency_sweep(
        build_world, loads, duration, warmup, seed=seed, jobs=jobs,
        experiment=f"{experiment}/sim", **durable, **tracing("sim"),
        **world_kwargs
    )
    real_points = load_latency_sweep(
        build_world, loads, duration, warmup, seed=seed + 7919,
        jobs=jobs, experiment=f"{experiment}/real", **durable,
        **tracing("real"), realism=RealismConfig(), **world_kwargs,
    )
    return {"sim": sim_points, "real": real_points}


#: Fig 5's four concurrency configurations: (nginx processes,
#: memcached threads).
FIG5_CONFIGS = ((8, 4), (8, 2), (4, 2), (4, 1))


def fig5_two_tier(
    configs: Sequence = FIG5_CONFIGS,
    loads_by_processes: Optional[Dict[int, Sequence[float]]] = None,
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
    slo: Optional[str] = None,
    scrape_interval: Optional[float] = None,
    shards: int = 1,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
) -> Dict[str, SweepPair]:
    """Fig 5: 2-tier load-latency across thread/process configs."""
    loads_by_processes = loads_by_processes or {
        8: (10_000, 25_000, 40_000, 52_000, 60_000, 66_000),
        4: (5_000, 12_000, 20_000, 26_000, 30_000, 33_000),
    }
    results: Dict[str, SweepPair] = {}
    for nginx_procs, mc_threads in configs:
        key = f"nginx={nginx_procs}p,memcached={mc_threads}t"
        results[key] = _real_and_sim(
            two_tier,
            loads_by_processes[nginx_procs],
            duration,
            warmup,
            seed,
            jobs=jobs,
            run_dir=run_dir,
            resume=resume,
            audit=audit,
            trace_dir=trace_dir,
            trace_sample=trace_sample,
            slo=slo,
            scrape_interval=scrape_interval,
            shards=shards,
            shard_timeout=shard_timeout,
            shard_restarts=shard_restarts,
            experiment=f"fig5/{key}",
            nginx_processes=nginx_procs,
            memcached_threads=mc_threads,
        )
    return results


def fig6_three_tier(
    loads: Sequence[float] = (2_000, 5_000, 8_000, 10_500, 12_500),
    duration: float = 0.6,
    warmup: float = 0.15,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
) -> SweepPair:
    """Fig 6: 3-tier (NGINX-memcached-MongoDB) validation."""
    return _real_and_sim(three_tier, loads, duration, warmup, seed,
                         jobs=jobs, run_dir=run_dir, resume=resume,
                         audit=audit, trace_dir=trace_dir,
                         trace_sample=trace_sample, experiment="fig6")


def fig8_load_balancing(
    scale_outs: Sequence[int] = (4, 8, 16),
    loads_by_scale: Optional[Dict[int, Sequence[float]]] = None,
    duration: float = 0.3,
    warmup: float = 0.08,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
) -> Dict[int, SweepPair]:
    """Fig 8: p99 vs load for each scale-out factor."""
    loads_by_scale = loads_by_scale or {
        4: (10_000, 20_000, 30_000, 35_000, 38_000),
        8: (20_000, 40_000, 60_000, 70_000, 76_000),
        16: (40_000, 80_000, 105_000, 118_000, 126_000),
    }
    return {
        so: _real_and_sim(
            load_balanced, loads_by_scale[so], duration, warmup, seed,
            jobs=jobs, run_dir=run_dir, resume=resume, audit=audit,
            trace_dir=trace_dir, trace_sample=trace_sample,
            experiment=f"fig8/scale{so}", scale_out=so,
        )
        for so in scale_outs
    }


def fig10_fanout(
    fanouts: Sequence[int] = (4, 8, 16),
    loads: Sequence[float] = (2_000, 4_000, 6_000, 7_500, 8_600),
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
) -> Dict[int, SweepPair]:
    """Fig 10: p99 vs load for each fanout factor."""
    return {
        fo: _real_and_sim(
            fanout, loads, duration, warmup, seed, jobs=jobs,
            run_dir=run_dir, resume=resume, audit=audit,
            trace_dir=trace_dir, trace_sample=trace_sample,
            experiment=f"fig10/fanout{fo}", fanout_factor=fo
        )
        for fo in fanouts
    }


def fig12a_thrift(
    loads: Sequence[float] = (10_000, 25_000, 40_000, 50_000, 56_000, 60_000),
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
) -> SweepPair:
    """Fig 12(a): Thrift echo RPC validation."""
    return _real_and_sim(thrift_echo, loads, duration, warmup, seed,
                         jobs=jobs, run_dir=run_dir, resume=resume,
                         audit=audit, trace_dir=trace_dir,
                         trace_sample=trace_sample, experiment="fig12a")


def fig12b_social_network(
    loads: Sequence[float] = (1_000, 3_000, 5_000, 6_500, 7_500),
    duration: float = 0.5,
    warmup: float = 0.12,
    seed: int = 1,
    jobs: int = 1,
    run_dir: RunDir = None,
    resume: bool = True,
    audit: bool = False,
    trace_dir: RunDir = None,
    trace_sample: float = 1.0,
    slo: Optional[str] = None,
    scrape_interval: Optional[float] = None,
    shards: int = 1,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
) -> SweepPair:
    """Fig 12(b): Social Network end-to-end validation."""
    return _real_and_sim(social_network, loads, duration, warmup, seed,
                         jobs=jobs, run_dir=run_dir, resume=resume,
                         audit=audit, trace_dir=trace_dir,
                         trace_sample=trace_sample, slo=slo,
                         scrape_interval=scrape_interval,
                         shards=shards, shard_timeout=shard_timeout,
                         shard_restarts=shard_restarts,
                         experiment="fig12b")
