"""Power-management study (paper SSV-B, Figs 15-16, Table III).

Drives the 2-tier application with a diurnal load while Algorithm 1
adjusts per-tier DVFS each decision interval, and reports the tail
latency / frequency timelines (Fig 16) and the QoS violation rate
(Table III). Building with a RealismConfig gives the "real system" row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..apps import two_tier
from ..apps.base import World
from ..telemetry import TimeSeries, WindowedLatency
from ..telemetry.slo import SLO, SLOAlert, SLOMonitor, parse_slo
from ..testbed import RealismConfig
from ..power import PowerManager
from ..workload import DiurnalPattern, OpenLoopClient


@dataclass
class PowerExperimentResult:
    """Outputs of one power-managed run (Fig 16 series + Table III cell)."""

    decision_interval: float
    qos_target: float
    violation_rate: float
    decisions: int
    mean_p99: float
    final_frequencies: Dict[str, float]
    p99_series: TimeSeries = field(repr=False)
    frequency_series: Dict[str, TimeSeries] = field(repr=False)
    load_series: TimeSeries = field(repr=False)
    #: Per-SLO verdicts (:meth:`SLOMonitor.summary`) when the run was
    #: driven by a declarative SLO; empty otherwise.
    slo_summary: Dict[str, dict] = field(default_factory=dict)
    slo_alerts: List[SLOAlert] = field(default_factory=list, repr=False)


def run_power_experiment(
    decision_interval: float = 0.5,
    qos_target: float = 5e-3,
    duration: float = 30.0,
    diurnal_low: float = 3_000.0,
    diurnal_high: float = 12_000.0,
    diurnal_period: float = 15.0,
    realism: Optional[RealismConfig] = None,
    seed: int = 0,
    nginx_processes: int = 2,
    memcached_threads: int = 1,
    slo: Optional[Union[str, SLO]] = None,
) -> PowerExperimentResult:
    """One Fig 16 timeline at the given decision interval.

    With *slo* (an :class:`SLO` or a spec string like ``"p99<5ms"``),
    Algorithm 1's QoS check becomes that objective's evaluation — the
    threshold supplies the QoS target, the percentile the sensed
    statistic — and an :class:`SLOMonitor` rides the run, recording
    burn-rate alerts whose summary lands in the result.

    The diurnal pattern compresses the paper's day-scale fluctuation
    into *diurnal_period* seconds so the experiment completes in
    simulable time; the controller time constants (decision intervals
    of 0.1-1 s) are kept at the paper's values. The default tier sizing
    (2 NGINX workers / 1 memcached thread) puts the diurnal peak just
    above the application's capacity at minimum frequency, so DVFS
    actually trades latency for power — the regime the paper studies.
    """
    if isinstance(slo, str):
        slo = parse_slo(slo, window=max(decision_interval, 0.05))
    world: World = two_tier(
        nginx_processes=nginx_processes,
        memcached_threads=memcached_threads,
        seed=seed,
        realism=realism,
    )
    pattern = DiurnalPattern(
        low=diurnal_low, high=diurnal_high, period=diurnal_period
    )
    e2e_window = WindowedLatency(
        window=max(decision_interval, 0.05), name="e2e"
    )
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=pattern,
        stop_at=duration,
        realism=world.realism,
        on_complete=lambda req: e2e_window.record(
            req.completed_at, req.latency
        ),
    )
    manager = PowerManager(
        world.sim,
        tiers={
            "nginx": world.instances("nginx"),
            "memcached": world.instances("memcached"),
        },
        client_latencies=e2e_window,
        qos_target=None if slo is not None else qos_target,
        decision_interval=decision_interval,
        slo=slo,
    )
    slo_monitor = None
    if slo is not None:
        slo_monitor = SLOMonitor(
            world.sim, [slo], interval=decision_interval
        )
        slo_monitor.attach(client)
        slo_monitor.start(stop_at=duration)
    client.start()
    manager.start()

    # Record the offered load for Fig 15.
    load_series = TimeSeries("offered_load")

    def sample_load() -> None:
        load_series.append(world.sim.now, pattern.rate(world.sim.now))
        if world.sim.now + 0.5 <= duration:
            world.sim.schedule(0.5, sample_load)

    world.sim.schedule(0.0, sample_load)
    world.sim.run(until=duration)

    p99_values = manager.p99_series.values
    return PowerExperimentResult(
        decision_interval=decision_interval,
        qos_target=manager.qos_target,
        violation_rate=manager.violation_rate,
        decisions=manager.decisions,
        mean_p99=float(np.mean(p99_values)) if p99_values.size else float("nan"),
        final_frequencies={
            tier: manager.tier_frequency(tier) for tier in manager.tier_names
        },
        p99_series=manager.p99_series,
        frequency_series=manager.frequency_series,
        load_series=load_series,
        slo_summary=(
            slo_monitor.summary() if slo_monitor is not None else {}
        ),
        slo_alerts=(
            list(slo_monitor.alerts) if slo_monitor is not None else []
        ),
    )


def violation_table(
    intervals: Tuple[float, ...] = (0.1, 0.5, 1.0),
    duration: float = 30.0,
    qos_target: float = 5e-3,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    **kwargs,
) -> Dict[float, PowerExperimentResult]:
    """Table III: QoS violation rate per decision interval."""
    return {
        interval: run_power_experiment(
            decision_interval=interval,
            qos_target=qos_target,
            duration=duration,
            seed=seed,
            realism=realism,
            **kwargs,
        )
        for interval in intervals
    }
