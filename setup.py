"""Legacy setup shim: the sandbox lacks the `wheel` package, so PEP 517
editable installs fail; `setup.py develop` works with plain setuptools."""

from setuptools import setup

setup()
