"""Tests for time series and report formatting."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.telemetry import TimeSeries, format_series, format_table, ms, us


class TestTimeSeries:
    def test_append_and_access(self):
        ts = TimeSeries("load")
        ts.append(0.0, 100)
        ts.append(1.0, 200)
        assert len(ts) == 2
        assert ts.times.tolist() == [0.0, 1.0]
        assert ts.values.tolist() == [100.0, 200.0]
        assert ts.last() == (1.0, 200.0)

    def test_monotonic_time_enforced(self):
        ts = TimeSeries()
        ts.append(1.0, 1)
        with pytest.raises(ReproError):
            ts.append(0.5, 2)

    def test_resample_means(self):
        ts = TimeSeries()
        for t in np.arange(0.0, 4.0, 0.5):
            ts.append(float(t), float(t))
        centres, means = ts.resample(bin_width=1.0)
        assert len(centres) == 4
        assert means[0] == pytest.approx(0.25)

    def test_resample_custom_reducer(self):
        ts = TimeSeries()
        for t, v in [(0.1, 1.0), (0.2, 9.0), (1.1, 5.0)]:
            ts.append(t, v)
        _, maxes = ts.resample(1.0, reducer=np.max)
        assert maxes.tolist() == [9.0, 5.0]

    def test_resample_explicit_t_end_excludes_later_samples(self):
        # Regression: the overflow bin (which exists so the default
        # window's last sample lands on its hi edge) swept in samples
        # past an explicitly-passed t_end.
        ts = TimeSeries()
        for t, v in [(0.5, 1.0), (1.5, 2.0), (2.0, 64.0), (2.5, 128.0)]:
            ts.append(t, v)
        _, means = ts.resample(1.0, t_start=0.0, t_end=2.0)
        # Window is [0, 2): both the t=2.0 and t=2.5 samples are out.
        assert means.tolist() == [1.0, 2.0]
        # The default window still includes its own last sample.
        _, means = ts.resample(1.0)
        assert means.tolist() == [1.0, 33.0, 128.0]

    def test_resample_empty_series(self):
        centres, values = TimeSeries().resample(1.0)
        assert centres.size == 0 and values.size == 0

    def test_resample_single_sample_default_window(self):
        # Regression: one sample made the default window zero-length
        # and raised; it now yields one bin holding the sample.
        ts = TimeSeries()
        ts.append(2.0, 7.0)
        centres, means = ts.resample(1.0)
        assert centres.tolist() == [2.5]
        assert means.tolist() == [7.0]

    def test_resample_duplicate_timestamps_share_a_bin(self):
        # Equal timestamps are legal appends (monotonicity is
        # non-strict); a series made only of them resamples like the
        # single-sample case rather than raising.
        ts = TimeSeries()
        ts.append(1.0, 3.0)
        ts.append(1.0, 5.0)
        centres, means = ts.resample(0.5)
        assert centres.tolist() == [1.25]
        assert means.tolist() == [4.0]

    def test_resample_explicit_degenerate_window_still_raises(self):
        # The single-bin rescue applies only to the *default* window;
        # an explicitly zero-length or inverted window is a caller
        # error.
        ts = TimeSeries()
        ts.append(1.0, 3.0)
        with pytest.raises(ReproError):
            ts.resample(1.0, t_start=1.0, t_end=1.0)
        with pytest.raises(ReproError):
            ts.resample(1.0, t_start=2.0, t_end=1.0)

    def test_last_on_empty_raises(self):
        with pytest.raises(ReproError):
            TimeSeries().last()

    def test_bad_bin_width(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        with pytest.raises(ReproError):
            ts.resample(0.0)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ["load", "p99"],
            [[1000, 1.234], [20000, 10.5]],
            title="Fig X",
        )
        lines = table.splitlines()
        assert lines[0] == "Fig X"
        assert "load" in lines[1] and "p99" in lines[1]
        assert len(lines) == 5

    def test_format_table_none_cells(self):
        table = format_table(["a"], [[None]])
        assert "-" in table.splitlines()[-1]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        s = format_series("sim", [1, 2], [0.1, 0.2], "qps", "ms")
        assert s.startswith("sim [qps vs ms]:")
        assert "(1," in s

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_unit_helpers(self):
        assert ms(0.005) == pytest.approx(5.0)
        assert us(0.005) == pytest.approx(5000.0)
