"""Edge cases of the plain-text report formatters.

``format_cell`` feeds every table the benchmarks and the CLI print, so
its corner cases (negative zero, bools, the precision-mode boundaries)
get pinned here; ``format_run_manifest`` and
``format_analytics_report`` are the CLI's summary surfaces.
"""

import pytest

from repro.telemetry.report import (
    format_analytics_report,
    format_cell,
    format_run_manifest,
    format_table,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_negative_zero_renders_as_zero(self):
        # -0.0 == 0 in float comparison; it must not print as "-0".
        assert format_cell(-0.0) == "0"
        assert format_cell(0.0) == "0"

    def test_bool_is_not_formatted_as_int(self):
        # bool is an int subclass; it must render True/False, not 1/0.
        assert format_cell(True) == "True"
        assert format_cell(False) == "False"
        assert format_cell(1) == "1"
        assert format_cell(0) == "0"

    def test_int_renders_exact(self):
        assert format_cell(123456789) == "123456789"
        assert format_cell(-42) == "-42"

    def test_precision_boundary_large(self):
        # >= 1e5 switches to scientific/compact %g formatting.
        assert format_cell(99999.4) == "99999.4"
        assert format_cell(1e5) == "1e+05"
        assert format_cell(123456.0) == "1.23e+05"

    def test_precision_boundary_small(self):
        # < 1e-3 switches to %g; 1e-3 itself stays fixed-point.
        assert format_cell(1e-3) == "0.001"
        assert format_cell(9.99e-4) == "0.000999"
        assert format_cell(1.23456e-5) == "1.23e-05"

    def test_fixed_point_strips_trailing_zeros(self):
        assert format_cell(1.500) == "1.5"
        assert format_cell(2.000) == "2"
        # 0.125 is exact in binary: %.2f ties-to-even gives 0.12.
        assert format_cell(0.125, precision=2) == "0.12"
        assert format_cell(0.126, precision=2) == "0.13"

    def test_negative_floats_keep_sign(self):
        assert format_cell(-1.5) == "-1.5"
        assert format_cell(-1.23456e-5) == "-1.23e-05"

    def test_strings_pass_through(self):
        assert format_cell("x") == "x"


class TestFormatTable:
    def test_ragged_row_raises(self):
        with pytest.raises(ValueError, match="2 cells"):
            format_table(["a", "b", "c"], [[1, 2]])
        with pytest.raises(ValueError):
            format_table(["a"], [[1], [1, 2]])

    def test_title_and_alignment(self):
        table = format_table(["col", "n"], [["x", 1]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned


class TestFormatRunManifest:
    def test_minimal_completed(self):
        text = format_run_manifest({
            "experiment": "fig8", "status": "completed",
            "counts": {"ok": 30},
        })
        assert text.startswith("run fig8: completed, 30/30 points ok")

    def test_failed_and_resumed_and_wall(self):
        text = format_run_manifest({
            "experiment": "fig8", "status": "partial",
            "counts": {"ok": 28, "failed": 2},
            "resumed_points": 5, "wall_time_s": 12.5,
        })
        assert "28/30 points ok" in text
        assert "2 failed (kept in journal; resume retries them)" in text
        assert "5 reused from journal" in text
        assert "12.5s wall" in text

    def test_unknown_outcomes_surface(self):
        # A new worker outcome class must never vanish from the line.
        text = format_run_manifest({
            "experiment": "fig14", "status": "partial",
            "counts": {"ok": 10, "failed": 1, "timeout": 3, "quarantined": 2},
        })
        assert "10/16 points ok" in text
        assert "3 timeout" in text
        assert "2 quarantined" in text

    def test_slo_block_breached_and_met(self):
        text = format_run_manifest({
            "experiment": "fig14", "status": "completed",
            "counts": {"ok": 4},
            "slo": {
                "p99<50ms": {"breaches": 2, "time_in_breach_s": 2.625},
                "avail>99.9%": {"breaches": 0},
            },
        })
        assert "SLO p99<50ms: 2 breaches (2.625s in breach)" in text
        assert "SLO avail>99.9%: met" in text

    def test_single_breach_singular(self):
        text = format_run_manifest({
            "experiment": "x", "status": "completed", "counts": {"ok": 1},
            "slo": {"p99<5ms": {"breaches": 1, "time_in_breach_s": 0.5}},
        })
        assert "1 breach (0.5s in breach)" in text
        assert "breaches" not in text

    def test_shard_sync_block_with_critical_shard(self):
        text = format_run_manifest({
            "experiment": "fig12b", "status": "completed",
            "counts": {"ok": 5},
            "shard_sync": {
                "shards": 4, "mode": "process", "rounds": 1277,
                "messages_exchanged": 833, "stalls": 2,
                "straggler_rounds": {"0": 500, "1": 308, "2": 192,
                                     "3": 277},
            },
        })
        assert "shards=4 (process): 1277 rounds, 833 messages, 2 stalls" \
            in text
        assert "critical shard 0 bounded 500/1277 rounds" in text

    def test_shard_recovery_block_attributes_restarts(self):
        text = format_run_manifest({
            "experiment": "fig12b", "status": "completed",
            "counts": {"ok": 5},
            "shard_recovery": {
                "restarts": 3,
                "per_shard": {"1": {"restarts": 2}, "3": {"restarts": 1}},
            },
        })
        assert "3 shard restarts (shard 1: 2, shard 3: 1)" in text
        single = format_run_manifest({
            "experiment": "x", "status": "completed", "counts": {"ok": 1},
            "shard_recovery": {"restarts": 1,
                               "per_shard": {"1": {"restarts": 1}}},
        })
        assert "1 shard restart (shard 1: 1)" in single

    def test_empty_manifest_does_not_crash(self):
        assert "unknown" in format_run_manifest({})


class TestFormatAnalyticsReport:
    def test_slo_and_profile_only(self):
        # A run with SLOs/profiling but no tracing still reports.
        text = format_analytics_report(
            None,
            slo={"p99<5ms": {
                "breaches": 1, "pages": 1, "time_in_breach_s": 0.5,
                "final_value": 0.006, "max_burn_rate": 2.0,
            }},
            profile={
                "events": 100, "events_per_sec": 50000.0,
                "hotspots": [{"key": "f", "count": 100,
                              "seconds": 0.002, "mean_us": 20.0}],
            },
        )
        assert "SLO verdicts" in text
        assert "p99<5ms" in text
        assert "engine profile: 100 events" in text
        assert "hotspots" in text
        assert "trace analytics" not in text

    def test_empty_inputs_give_empty_report(self):
        assert format_analytics_report(None) == ""
