"""Live SLO monitoring: parsing, burn-rate evaluation, alert timing.

The load-bearing acceptance test: an ``p99 < x`` objective fires its
breach alert at exactly the simulated time the *windowed* p99 crosses
x — verified against an independent reconstruction of the windowed
percentile from the raw observation log, across two seeds.
"""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.errors import ReproError
from repro.telemetry import (
    ALERT_BREACH,
    ALERT_RECOVERY,
    AVAILABILITY,
    LATENCY,
    MetricsRegistry,
    SLO,
    SLOMonitor,
    parse_slo,
)


class TestParseSlo:
    def test_latency_forms(self):
        slo = parse_slo("p99<5ms")
        assert slo.metric == LATENCY
        assert slo.percentile == 99.0
        assert slo.threshold == pytest.approx(5e-3)
        assert parse_slo("p95<250us").threshold == pytest.approx(250e-6)
        assert parse_slo("p50<1.5s").threshold == pytest.approx(1.5)
        spaced = parse_slo("P99 < 5 ms")  # case/whitespace tolerant
        assert spaced == parse_slo("p99<5ms")

    def test_availability_forms(self):
        slo = parse_slo("avail>99.9%")
        assert slo.metric == AVAILABILITY
        assert slo.threshold == pytest.approx(0.999)
        assert parse_slo("availability>99.9") == slo

    def test_window_threads_through(self):
        assert parse_slo("p99<5ms", window=0.25).window == 0.25

    @pytest.mark.parametrize("bad", [
        "p99>5ms",      # wrong comparator for latency
        "p99<5",        # missing unit
        "avail<99%",    # wrong comparator for availability
        "latency<5ms",
        "",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ReproError):
            parse_slo(bad)

    def test_names_round_trip_units(self):
        assert parse_slo("p99<5ms").name == "p99<5ms"
        assert parse_slo("p95<250us").name == "p95<250us"
        assert parse_slo("p50<1.5s").name == "p50<1.5s"
        assert parse_slo("avail>99.9%").name == "avail>99.9%"


class TestSLOValidation:
    def test_budget(self):
        assert parse_slo("p99<5ms").budget == pytest.approx(0.01)
        assert parse_slo("avail>99.9%").budget == pytest.approx(0.001)

    @pytest.mark.parametrize("kwargs", [
        dict(metric="throughput", threshold=1.0),
        dict(metric=LATENCY, threshold=5e-3),  # no percentile
        dict(metric=LATENCY, threshold=5e-3, percentile=100.0),
        dict(metric=LATENCY, threshold=0.0, percentile=99.0),
        dict(metric=AVAILABILITY, threshold=99.9),  # fraction, not percent
        dict(metric=LATENCY, threshold=5e-3, percentile=99.0, window=0.0),
        dict(metric=LATENCY, threshold=5e-3, percentile=99.0,
             short_window_divisor=0.5),
    ])
    def test_rejects_bad_objectives(self, kwargs):
        with pytest.raises(ReproError):
            SLO(**kwargs)


def _drive(monitor, sim, latencies_at, duration, period=0.005):
    """Schedule one synthetic completion every *period* seconds, with
    latency drawn by ``latencies_at(t)``; returns the observation log."""
    log = []

    def complete():
        latency = latencies_at(sim.now)
        monitor.observe(sim.now, latency, ok=True)
        log.append((sim.now, latency))

    t = period
    while t <= duration:
        sim.schedule(t, complete)
        t += period
    sim.run(until=duration)
    return log


def _windowed_p99(log, now, window):
    """Independent reconstruction of WindowedLatency's p99 at *now*:
    samples within *window* behind the latest completion seen."""
    seen = [(t, v) for t, v in log if t <= now]
    if not seen:
        return None
    latest = max(t for t, _ in seen)
    values = [v for t, v in seen if t >= latest - window]
    return float(np.percentile(values, 99.0)) if values else None


class TestBreachTiming:
    @pytest.mark.parametrize("seed", [7, 23])
    def test_alert_fires_when_windowed_p99_crosses(self, seed):
        # Latency ramps from well under the 5ms threshold to well over
        # it partway through; seeded noise makes the exact crossing
        # seed-dependent. The breach alert must land at the first
        # evaluation tick where the independently reconstructed
        # windowed p99 exceeds the threshold — no earlier, no later.
        sim = Simulator(seed=seed)
        slo = parse_slo("p99<5ms", window=0.2)
        monitor = SLOMonitor(sim, [slo], interval=0.05, min_samples=5)
        monitor.start(stop_at=1.0)
        rng = np.random.default_rng(seed)

        def latency_at(t):
            base = 0.001 if t < 0.5 else 0.010
            return base * (1.0 + 0.2 * float(rng.random()))

        log = _drive(monitor, sim, latency_at, duration=1.0)

        check_times = [
            round(0.05 * k, 10) for k in range(1, 21)
        ]
        expected_breach = None
        for t in check_times:
            seen = [v for tv, v in log if tv <= t]
            if len(seen) < 5:
                continue
            p99 = _windowed_p99(log, t, slo.window)
            if p99 is not None and p99 > slo.threshold:
                expected_breach = t
                break
        assert expected_breach is not None
        breaches = monitor.breaches()
        assert len(breaches) == 1
        assert breaches[0].t == pytest.approx(expected_breach, abs=1e-9)
        assert breaches[0].value > slo.threshold
        assert breaches[0].burn_rate > 1.0

    def test_fast_burn_pages_slow_burn_warns(self):
        # A breach whose short window is also burning is a page; a
        # breach detected only after the bad samples aged out of the
        # short window is a warn.
        sim = Simulator(seed=0)
        slo = parse_slo("p99<5ms", window=0.4)
        monitor = SLOMonitor(sim, [slo], interval=0.05, min_samples=5)
        monitor.start(stop_at=1.0)
        _drive(monitor, sim, lambda t: 0.001 if t < 0.5 else 0.02,
               duration=1.0)
        breach = monitor.breaches()[0]
        assert breach.severity == "page"
        assert breach.fast_burn_rate is not None
        assert breach.fast_burn_rate >= 1.0

    def test_recovery_and_time_in_breach(self):
        # Bad latencies only in [0.3, 0.5): the alert must recover once
        # the bad samples age out of the window, and time_in_breach
        # must equal the breach->recovery gap.
        sim = Simulator(seed=0)
        slo = parse_slo("p99<5ms", window=0.1)
        monitor = SLOMonitor(sim, [slo], interval=0.05, min_samples=3)
        monitor.start(stop_at=1.0)
        _drive(
            monitor, sim,
            lambda t: 0.02 if 0.3 <= t < 0.5 else 0.001,
            duration=1.0,
        )
        kinds = [a.kind for a in monitor.alerts]
        assert kinds == [ALERT_BREACH, ALERT_RECOVERY]
        breach, recovery = monitor.alerts
        assert breach.t < recovery.t
        in_breach = monitor.time_in_breach()[slo.name]
        assert in_breach == pytest.approx(recovery.t - breach.t)
        assert not monitor.summary()[slo.name]["breached_now"]

    def test_deterministic_across_identical_runs(self):
        def run():
            sim = Simulator(seed=5)
            monitor = SLOMonitor(
                sim, [parse_slo("p99<5ms", window=0.2)],
                interval=0.05, min_samples=5,
            )
            monitor.start(stop_at=1.0)
            rng = np.random.default_rng(5)
            _drive(
                monitor, sim,
                lambda t: (0.001 if t < 0.6 else 0.01)
                * (1.0 + 0.1 * float(rng.random())),
                duration=1.0,
            )
            return [(a.t, a.kind, a.value) for a in monitor.alerts]

        assert run() == run()


class TestAvailability:
    def test_availability_breach_on_failures(self):
        sim = Simulator(seed=0)
        slo = parse_slo("avail>99%", window=0.2)
        monitor = SLOMonitor(sim, [slo], interval=0.05, min_samples=5)
        monitor.start(stop_at=1.0)

        def complete():
            # 10% failures after t=0.5: availability 0.9 < 0.99.
            ok = not (sim.now >= 0.5 and int(sim.now * 200) % 10 == 0)
            monitor.observe(sim.now, 0.001 if ok else None, ok=ok)

        t = 0.005
        while t <= 1.0:
            sim.schedule(t, complete)
            t += 0.005
        sim.run(until=1.0)
        breaches = monitor.breaches()
        assert breaches and breaches[0].t > 0.5
        assert breaches[0].value < 0.99
        summary = monitor.summary()[slo.name]
        assert summary["metric"] == AVAILABILITY
        assert summary["breaches"] == len(breaches)

    def test_latency_slo_ignores_failed_requests(self):
        # Failed requests have no latency; only the availability SLO
        # should see them.
        sim = Simulator(seed=0)
        monitor = SLOMonitor(
            sim, [parse_slo("p99<5ms", window=1.0)],
            interval=0.1, min_samples=1,
        )
        monitor.start(stop_at=1.0)

        def complete():
            monitor.observe(sim.now, None, ok=False)
            monitor.observe(sim.now, 0.001, ok=True)

        for k in range(1, 10):
            sim.schedule(0.1 * k, complete)
        sim.run(until=1.0)
        assert not monitor.alerts
        assert len(monitor.states[0].primary) == 9


class TestMonitorMechanics:
    def test_registry_mirrors_alerts_and_burn(self):
        sim = Simulator(seed=0)
        registry = MetricsRegistry()
        slo = parse_slo("p99<5ms", window=0.2)
        monitor = SLOMonitor(
            sim, [slo], registry=registry, interval=0.05, min_samples=5
        )
        monitor.start(stop_at=1.0)
        _drive(monitor, sim, lambda t: 0.001 if t < 0.5 else 0.02,
               duration=1.0)
        counters = registry.collect()["counters"]
        gauges = registry.collect()["gauges"]
        assert counters[
            f'slo_alerts_total{{kind="breach",slo="{slo.name}"}}'
        ] == 1
        assert gauges[f'slo_breached{{slo="{slo.name}"}}'] == 1.0
        assert gauges[f'slo_burn_rate{{slo="{slo.name}"}}'] > 1.0

    def test_listeners_see_transitions(self):
        sim = Simulator(seed=0)
        monitor = SLOMonitor(
            sim, [parse_slo("p99<5ms", window=0.2)],
            interval=0.05, min_samples=5,
        )
        seen = []
        monitor.listeners.append(lambda alert: seen.append(alert.kind))
        monitor.start(stop_at=1.0)
        _drive(monitor, sim, lambda t: 0.02, duration=1.0)
        assert seen == [ALERT_BREACH]

    def test_stands_down_on_drain_run(self):
        # Without stop_at, the periodic check must not keep a drain-style
        # run alive forever once it is the only live event.
        sim = Simulator(seed=0)
        monitor = SLOMonitor(
            sim, [parse_slo("p99<5ms")], interval=0.01, min_samples=1
        )
        monitor.start()
        sim.schedule(0.05, lambda: monitor.observe(sim.now, 0.001))
        sim.run()  # must terminate
        assert sim.now <= 0.07
        assert monitor.evaluations >= 1

    def test_min_samples_gates_evaluation(self):
        sim = Simulator(seed=0)
        monitor = SLOMonitor(
            sim, [parse_slo("p99<5ms", window=1.0)],
            interval=0.1, min_samples=50,
        )
        monitor.start(stop_at=1.0)
        _drive(monitor, sim, lambda t: 0.02, duration=0.3, period=0.05)
        assert not monitor.alerts  # only 6 samples, below the gate

    def test_constructor_validation(self):
        sim = Simulator(seed=0)
        with pytest.raises(ReproError):
            SLOMonitor(sim, [])
        with pytest.raises(ReproError):
            SLOMonitor(sim, [parse_slo("p99<5ms")], interval=0.0)
        with pytest.raises(ReproError):
            SLOMonitor(sim, [parse_slo("p99<5ms")], min_samples=0)
        monitor = SLOMonitor(sim, [parse_slo("p99<5ms")])
        monitor.start()
        with pytest.raises(ReproError):
            monitor.start()

    def test_attach_chains_existing_hook(self):
        class FakeClient:
            _extra_on_complete = None

        class FakeRequest:
            outcome = "ok"
            completed_at = 0.5
            latency = 0.002

        sim = Simulator(seed=0)
        monitor = SLOMonitor(sim, [parse_slo("p99<5ms")], min_samples=1)
        calls = []
        client = FakeClient()
        client._extra_on_complete = lambda req: calls.append(req)
        monitor.attach(client)
        request = FakeRequest()
        client._extra_on_complete(request)
        assert calls == [request]
        assert len(monitor.states[0].primary) == 1
