"""Sim-time scrape loop: sampling, export round-trips, and the
never-changes-results contract."""

import pytest

from repro.apps import two_tier
from repro.engine import Simulator
from repro.errors import ReproError
from repro.experiments.loadsweep import measure_vanilla_point
from repro.telemetry import (
    TIMELINE_SCHEMA,
    MetricsRegistry,
    Scraper,
    counters_from_perfetto,
    load_timeline,
    scrape_tiers,
    series_from_json,
    series_to_json,
    timeline_payload,
    to_perfetto,
    write_timeline,
)

QPS = 2000.0


class TestScraperLifecycle:
    def test_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ReproError):
            Scraper(sim, interval=0.0)
        with pytest.raises(ReproError):
            Scraper(sim, interval=-1.0)

    def test_start_twice_raises(self):
        scraper = Scraper(Simulator(), interval=0.1)
        scraper.start()
        with pytest.raises(ReproError):
            scraper.start()

    def test_tick_cadence_includes_partial_closeout(self):
        # stop_at is not a multiple of the interval: the loop must add
        # one final sample at exactly stop_at (the ServiceMonitor
        # contract) instead of dropping the partial window.
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("n").inc()
        scraper = Scraper(
            sim, interval=0.025, registry=reg, stop_at=0.09
        ).start()
        sim.run(until=0.2)
        times = scraper.series["counter/n"].times.tolist()
        assert times == pytest.approx([0.025, 0.05, 0.075, 0.09])

    def test_registry_series_are_cumulative(self):
        sim = Simulator()
        reg = MetricsRegistry()
        counter = reg.counter("done", outcome="ok")
        sim.schedule(0.01, lambda: counter.inc(2))
        sim.schedule(0.11, lambda: counter.inc(3))
        scraper = Scraper(
            sim, interval=0.1, registry=reg, stop_at=0.2
        ).start()
        sim.run(until=0.2)
        series = scraper.series['counter/done{outcome="ok"}']
        assert series.values.tolist() == [2.0, 5.0]

    def test_drain_run_terminates_without_stop_at(self):
        # With no horizon the scrape tick must stand down once it is
        # the only pending event, or a drain-style run never finishes.
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        sim.schedule(0.32, lambda: None)
        scraper = Scraper(sim, interval=0.1, registry=reg).start()
        sim.run(max_events=10_000)
        assert len(sim.events) == 0
        # Ticks at 0.1/0.2/0.3 see the model event still pending; the
        # 0.4 tick finds the queue empty and does not reschedule.
        assert scraper.series["gauge/g"].times.tolist() == pytest.approx(
            [0.1, 0.2, 0.3, 0.4]
        )

    def test_scrape_tiers_covers_services_and_netprocs(self):
        world = two_tier(seed=1)
        tiers = scrape_tiers(world.deployment)
        for service in world.deployment.services:
            assert service in tiers
            assert tiers[service]
        for proc in world.deployment.netprocs.values():
            assert tiers[proc.name] == [proc]


class TestScrapeNeverChangesResults:
    def test_vanilla_outcome_identity(self):
        off = measure_vanilla_point(two_tier, QPS, 0.05, 0.01, 7)
        on = measure_vanilla_point(
            two_tier, QPS, 0.05, 0.01, 7, scrape_interval=0.01
        )
        # The scrape loop reads state and draws no randomness: every
        # measured field must be identical, not merely close.
        assert off.timeline is None and on.timeline is not None
        assert on == type(off)(
            **{f: getattr(off, f) for f in off.__dataclass_fields__
               if f != "timeline"},
            timeline=on.timeline,
        )

    def test_scraped_point_carries_expected_series(self):
        on = measure_vanilla_point(
            two_tier, QPS, 0.05, 0.01, 7, scrape_interval=0.01
        )
        series = on.timeline["series"]
        assert "client/qps" in series and "client/inflight" in series
        world = two_tier(seed=7)
        for service in world.deployment.services:
            assert f"util/{service}" in series
            assert f"depth/{service}" in series
        for data in series.values():
            assert len(data["times"]) == len(data["values"]) > 0
        # Utilisation samples are fractions of cores busy.
        for name, data in series.items():
            if name.startswith("util/"):
                assert all(0.0 <= v <= 1.0 for v in data["values"])


class TestTimelineArtifact:
    def _payload(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("n").inc()
        scraper = Scraper(
            sim, interval=0.05, registry=reg, stop_at=0.2
        ).start()
        sim.run(until=0.2)
        return timeline_payload(
            scraper.snapshot(), interval=0.05, meta={"qps": 100.0}
        )

    def test_write_load_roundtrip(self, tmp_path):
        payload = self._payload()
        path = tmp_path / "timeseries.json"
        write_timeline(path, payload)
        assert load_timeline(path) == payload
        assert payload["schema"] == TIMELINE_SCHEMA

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "timeseries.json"
        path.write_text('{"series": {}}')
        with pytest.raises(ReproError, match="schema"):
            load_timeline(path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(ReproError):
            load_timeline(path)

    def test_series_json_roundtrip(self):
        payload = self._payload()
        for name, data in payload["series"].items():
            series = series_from_json(name, data)
            assert series_to_json(series) == data

    def test_perfetto_counter_roundtrip_is_bit_exact(self):
        snapshot = self._payload()["series"]
        doc = to_perfetto([], counters=snapshot)
        tracks = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert tracks and all(e["pid"] == 0 for e in tracks)
        assert counters_from_perfetto(doc) == snapshot

    def test_counters_from_perfetto_rejects_garbage(self):
        with pytest.raises(ReproError):
            counters_from_perfetto({"not": "a trace"})
