"""Unit tests for the span/trace model and its exporters."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.telemetry import (
    SPAN_CANCELLED,
    SPAN_OK,
    Span,
    Trace,
    TraceConfig,
    Tracer,
    from_otlp,
    read_otlp,
    to_otlp,
    to_perfetto,
    write_otlp,
    write_perfetto,
)


class FakeJob:
    def __init__(self, created_at=None, first_dispatch_at=None):
        self.created_at = created_at
        self.first_dispatch_at = first_dispatch_at


class FakeRequest:
    def __init__(self, request_id=7, request_type="rt", created_at=0.5):
        self.request_id = request_id
        self.request_type = request_type
        self.created_at = created_at


class TestSpan:
    def test_open_span_has_no_duration(self):
        span = Span("n", "i0", "svc", 0, enter=1.0)
        assert not span.closed
        with pytest.raises(ReproError):
            span.duration

    def test_finish_breakdown_sums_to_duration(self):
        span = Span("n", "i0", "svc", 0, enter=1.0)
        span.finish(1.010, job=FakeJob(created_at=1.001,
                                       first_dispatch_at=1.004))
        assert span.status == SPAN_OK
        assert span.network == pytest.approx(0.001)
        assert span.queueing == pytest.approx(0.003)
        assert span.service_time == pytest.approx(0.006)
        assert span.network + span.queueing + span.service_time == (
            pytest.approx(span.duration)
        )

    def test_finish_clamps_unreached_timestamps(self):
        # A cancelled attempt whose job never reached a core: the
        # missing first_dispatch_at clamps to the close time, keeping
        # the breakdown identity.
        span = Span("n", "i0", "svc", 1, enter=0.0)
        span.finish(0.004, job=FakeJob(created_at=0.001),
                    status=SPAN_CANCELLED)
        assert span.status == SPAN_CANCELLED
        assert span.network == pytest.approx(0.001)
        assert span.queueing == pytest.approx(0.003)
        assert span.service_time == 0.0

    def test_finish_without_breakdown_books_service(self):
        span = Span("n", "i0", "svc", 0, enter=2.0)
        span.finish(5.0, breakdown=False)
        assert span.service_time == pytest.approx(3.0)
        assert span.network == 0.0 and span.queueing == 0.0

    def test_double_finish_is_idempotent(self):
        span = Span("n", "i0", "svc", 0, enter=0.0)
        span.finish(1.0)
        span.finish(9.0, status=SPAN_CANCELLED)
        assert span.leave == 1.0
        assert span.status == SPAN_OK


class TestTrace:
    def test_attempt_bookkeeping(self):
        trace = Trace(1)
        trace.start_span("a", "a0", "svc", 0, 0.0).finish(1.0)
        trace.start_span("a", "a1", "svc", 1, 2.0).finish(
            2.5, status=SPAN_CANCELLED
        )
        open_span = trace.start_span("b", "b0", "svc", 1, 2.6)
        assert trace.attempts == 2
        assert len(trace.spans_for_attempt(1)) == 2
        assert [s.instance for s in trace.completed_spans()] == ["a0"]
        completed = trace.completed_spans(include_cancelled=True)
        assert len(completed) == 2
        assert open_span not in completed


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            TraceConfig(sample_rate=1.5)
        with pytest.raises(ReproError):
            TraceConfig(sample_rate=-0.1)
        with pytest.raises(ReproError):
            TraceConfig(max_traces=0)
        assert TraceConfig().sample_rate == 1.0


class TestTracer:
    def test_sampling_is_deterministic_per_stream(self):
        def sampled_ids(seed):
            tracer = Tracer(
                TraceConfig(sample_rate=0.3),
                rng=np.random.default_rng(seed),
            )
            return [
                i for i in range(200)
                if tracer.start_trace(FakeRequest(request_id=i)) is not None
            ]

        assert sampled_ids(42) == sampled_ids(42)
        assert sampled_ids(42) != sampled_ids(43)
        count = len(sampled_ids(42))
        assert 30 < count < 90  # ~60 expected

    def test_zero_rate_never_needs_rng(self):
        tracer = Tracer(TraceConfig(sample_rate=0.0))
        assert tracer.start_trace(FakeRequest()) is None
        assert tracer.unsampled == 1

    def test_fractional_rate_without_rng_rejected(self):
        tracer = Tracer(TraceConfig(sample_rate=0.5))
        with pytest.raises(ReproError):
            tracer.start_trace(FakeRequest())

    def test_max_traces_caps_memory(self):
        tracer = Tracer(TraceConfig(max_traces=2))
        for i in range(5):
            tracer.start_trace(FakeRequest(request_id=i))
        assert len(tracer.traces) == 2
        assert tracer.sampled == 2
        assert tracer.dropped == 3


def sample_traces():
    t1 = Trace(11, request_type="search", created_at=0.001)
    t1.start_span("web", "web0", "web", 0, 0.002).finish(
        0.004, job=FakeJob(0.0025, 0.003)
    )
    t1.start_span("web", "web1", "web", 1, 0.010).finish(
        0.011, status=SPAN_CANCELLED
    )
    t1.add_event(0.009, "retry_scheduled", attempt=1, delay=0.001)
    t1.finish(0.0045, "ok")
    t2 = Trace(12, created_at=0.5)
    t2.start_span("db", "db0", "db", 0, 0.51).finish(0.52)
    t2.finish(0.53, "timeout")
    return [t1, t2]


class TestPerfetto:
    def test_events_are_well_formed(self):
        doc = to_perfetto(sample_traces())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["dur"] >= 0
        # pid = request id, tid = attempt: sibling attempts on separate
        # tracks of the same process.
        web = [e for e in complete if e["pid"] == 11]
        assert sorted(e["tid"] for e in web) == [0, 1]
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["retry_scheduled"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 2

    def test_open_spans_are_skipped(self):
        trace = Trace(1)
        trace.start_span("hung", "h0", "svc", 0, 1.0)  # never finished
        doc = to_perfetto([trace])
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]

    def test_write_produces_valid_json(self, tmp_path):
        path = tmp_path / "trace.perfetto.json"
        write_perfetto(path, sample_traces())
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"


class TestOtlpRoundTrip:
    def test_exact_round_trip(self):
        originals = sample_traces()
        decoded = from_otlp(to_otlp(originals))
        assert len(decoded) == len(originals)
        for original, copy in zip(originals, decoded):
            assert copy.request_id == original.request_id
            assert copy.request_type == original.request_type
            assert copy.created_at == original.created_at
            assert copy.completed_at == original.completed_at
            assert copy.outcome == original.outcome
            assert copy.breakdown == original.breakdown
            assert len(copy.spans) == len(original.spans)
            for a, b in zip(original.spans, copy.spans):
                assert (a.node, a.instance, a.service, a.attempt) == (
                    b.node, b.instance, b.service, b.attempt
                )
                # Bit-exact floats via the repro.*_s attributes.
                assert a.enter == b.enter and a.leave == b.leave
                assert a.status == b.status
                assert a.network == b.network
                assert a.queueing == b.queueing
                assert a.service_time == b.service_time
            for ea, eb in zip(original.events, copy.events):
                assert ea.t == eb.t and ea.name == eb.name
                assert ea.attrs == eb.attrs

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.otlp.json"
        write_otlp(path, sample_traces())
        decoded = read_otlp(path)
        assert [t.request_id for t in decoded] == [11, 12]
        # Nano timestamps are present and plausible alongside the
        # exact attributes.
        payload = json.loads(path.read_text())
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert all(span["traceId"] for span in spans)

    def test_garbage_payload_rejected(self):
        with pytest.raises(ReproError):
            from_otlp({"not": "otlp"})
