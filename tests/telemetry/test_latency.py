"""Tests for latency recorders and windowed views."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.telemetry import LatencyRecorder, WindowedLatency


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        rec = LatencyRecorder()
        for i, latency in enumerate([1.0, 2.0, 3.0, 4.0]):
            rec.record(float(i), latency)
        assert rec.mean() == pytest.approx(2.5)
        assert rec.p50() == pytest.approx(2.5)
        assert rec.max() == 4.0
        assert len(rec) == 4

    def test_warmup_trimming_via_since(self):
        rec = LatencyRecorder()
        rec.record(0.5, 100.0)  # warmup junk
        rec.record(2.0, 1.0)
        rec.record(3.0, 1.0)
        assert rec.mean(since=1.0) == pytest.approx(1.0)
        assert rec.count(since=1.0) == 2

    def test_until_bound(self):
        rec = LatencyRecorder()
        rec.record(1.0, 1.0)
        rec.record(2.0, 2.0)
        rec.record(3.0, 3.0)
        assert rec.mean(since=0.0, until=2.0) == pytest.approx(1.5)

    def test_p99_matches_numpy(self):
        rec = LatencyRecorder()
        rng = np.random.default_rng(0)
        values = rng.exponential(1.0, size=5000)
        for i, v in enumerate(values):
            rec.record(float(i), float(v))
        assert rec.p99() == pytest.approx(np.percentile(values, 99))

    def test_throughput(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(i * 0.01, 1e-3)
        assert rec.throughput(0.0, 1.0) == pytest.approx(100, rel=0.02)

    def test_out_of_order_insert(self):
        rec = LatencyRecorder()
        rec.record(2.0, 2.0)
        rec.record(1.0, 1.0)  # merged stream: earlier completion
        times, values = rec.samples()
        assert times.tolist() == [1.0, 2.0]
        assert values.tolist() == [1.0, 2.0]

    @pytest.mark.parametrize(
        "query,expected",
        [
            (lambda r: r.count(since=1.5, until=3.0), 2),
            (lambda r: r.mean(since=1.5, until=3.0), 2.5),
            (lambda r: r.percentile(100, since=1.5, until=3.0), 3.0),
            (lambda r: r.max(since=1.5, until=3.0), 3.0),
        ],
        ids=["count", "mean", "percentile", "max"],
    )
    def test_windowed_queries_respect_until(self, query, expected):
        # Regression: max() used to ignore `until` and report the 9.0
        # outlier past the window's end.
        rec = LatencyRecorder()
        for t, v in [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 9.0)]:
            rec.record(t, v)
        assert query(rec) == pytest.approx(expected)

    def test_empty_queries_raise(self):
        rec = LatencyRecorder()
        with pytest.raises(ReproError):
            rec.mean()
        with pytest.raises(ReproError):
            rec.percentile(99)

    def test_invalid_inputs(self):
        rec = LatencyRecorder()
        with pytest.raises(ReproError):
            rec.record(0.0, -1.0)
        rec.record(0.0, 1.0)
        with pytest.raises(ReproError):
            rec.percentile(101)
        with pytest.raises(ReproError):
            rec.throughput(1.0, 1.0)


class TestWindowedLatency:
    def test_window_evicts_old_samples(self):
        win = WindowedLatency(window=1.0)
        win.record(0.0, 10.0)
        win.record(0.5, 20.0)
        win.record(2.0, 30.0)  # evicts both older samples
        assert len(win) == 1
        assert win.mean() == pytest.approx(30.0)

    def test_percentile_over_window(self):
        win = WindowedLatency(window=10.0)
        for i in range(100):
            win.record(i * 0.01, float(i))
        assert win.percentile(50) == pytest.approx(49.5)

    def test_merged_stream_eviction_tracks_max_timestamp_seen(self):
        # Regression: eviction used the latest *inserted* timestamp, so
        # an out-of-order straggler from a merged completion stream
        # rewound the horizon and resurrected already-evicted samples.
        win = WindowedLatency(window=1.0)
        win.record(10.0, 1.0)
        win.record(9.5, 2.0)  # straggler inside the window: kept, sorted
        assert len(win) == 2
        win.record(8.0, 3.0)  # straggler past the window: dropped
        assert len(win) == 2
        win.record(10.4, 4.0)
        assert len(win) == 3
        win.record(10.6, 5.0)  # horizon 9.6 now evicts the 9.5 sample
        assert len(win) == 3
        assert win.mean() == pytest.approx(np.mean([1.0, 4.0, 5.0]))

    def test_empty_returns_none(self):
        win = WindowedLatency(window=1.0)
        assert win.percentile(99) is None
        assert win.mean() is None

    def test_clear(self):
        win = WindowedLatency(window=1.0)
        win.record(0.0, 1.0)
        win.clear()
        assert len(win) == 0

    def test_invalid_window(self):
        with pytest.raises(ReproError):
            WindowedLatency(window=0)
