"""Unit tests for the metrics registry and its wiring helpers."""

import json

import pytest

from repro.errors import ReproError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(3.0)
        assert gauge.value == pytest.approx(3.0)

    def test_histogram_buckets_and_mean(self):
        hist = Histogram(buckets=[1.0, 2.0, 4.0])
        for v in [0.5, 1.5, 3.0, 100.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.counts == [1, 1, 1, 1]  # last is the +inf overflow
        assert hist.mean == pytest.approx(26.25)

    def test_histogram_quantile_interpolates(self):
        hist = Histogram(buckets=[1.0, 2.0])
        for _ in range(100):
            hist.observe(1.5)
        q = hist.quantile(0.5)
        assert 1.0 <= q <= 2.0
        with pytest.raises(ReproError):
            hist.quantile(1.5)

    def test_empty_histogram_queries_raise(self):
        hist = Histogram()
        with pytest.raises(ReproError):
            hist.mean
        with pytest.raises(ReproError):
            hist.quantile(0.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ReproError):
            Histogram(buckets=[2.0, 1.0])
        with pytest.raises(ReproError):
            Histogram(buckets=[])


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", service="web")
        b = reg.counter("hits", service="web")
        c = reg.counter("hits", service="db")
        assert a is b and a is not c

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("edge", upstream="x", service="y")
        b = reg.counter("edge", service="y", upstream="x")
        assert a is b

    def test_collect_renders_prometheus_style_keys(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", outcome="ok").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=[0.1, 1.0]).observe(0.5)
        out = reg.collect()
        assert out["counters"]['requests_total{outcome="ok"}'] == 3
        assert out["gauges"]["depth"] == 7
        hist = out["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["buckets"] == {"0.1": 0, "1": 1, "+inf": 0}

    def test_write_is_valid_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        path = tmp_path / "metrics.json"
        reg.write(path)
        assert json.loads(path.read_text())["counters"]["n"] == 1.0

    def test_label_values_escaped_per_exposition_format(self, tmp_path):
        # Regression: a quote, backslash, or newline in a label value
        # was rendered raw, producing keys a Prometheus-style parser
        # cannot read back (and making distinct values collide).
        reg = MetricsRegistry()
        reg.counter("hits", path='say "hi"').inc()
        reg.counter("hits", path="a\\b").inc(2)
        reg.counter("hits", path="line\nbreak").inc(3)
        out = reg.collect()["counters"]
        assert out['hits{path="say \\"hi\\""}'] == 1
        assert out['hits{path="a\\\\b"}'] == 2
        assert out['hits{path="line\\nbreak"}'] == 3
        # No raw newline or unescaped quote survives into any key, so
        # the written artifact stays line-parseable.
        path = tmp_path / "metrics.json"
        reg.write(path)
        for key in json.loads(path.read_text())["counters"]:
            assert "\n" not in key

    def test_escaping_prevents_label_injection(self):
        # Pre-fix, the crafted value `x",v="y` rendered byte-identical
        # to the honest two-label series {a="x", v="y"} — two distinct
        # series collapsing onto one collected key, the second silently
        # overwriting the first.
        reg = MetricsRegistry()
        reg.counter("c", a='x",v="y').inc()
        reg.counter("c", a="x", v="y").inc(2)
        out = reg.collect()["counters"]
        assert len(out) == 2
        assert out['c{a="x\\",v=\\"y"}'] == 1
        assert out['c{a="x",v="y"}'] == 2


class TestWorldWiring:
    def build(self):
        from repro.apps import two_tier

        world = two_tier(seed=3)
        reg = MetricsRegistry()
        reg.instrument_world(world)
        return world, reg

    def test_instrumented_world_populates_all_instruments(self):
        from repro.service import Request

        world, reg = self.build()
        for i in range(20):
            world.dispatcher.submit(Request(created_at=i * 1e-3))
        world.sim.run()
        reg.sample_deployment_gauges(world.deployment, world.sim.now)
        out = reg.collect()
        assert out["counters"]['requests_total{outcome="ok"}'] == 20
        # Edge traffic: client->web and web->memcached.
        edges = [k for k in out["counters"] if k.startswith("edge_requests")]
        assert len(edges) >= 2
        picks = [k for k in out["counters"] if k.startswith("lb_picks")]
        assert picks and sum(out["counters"][k] for k in picks) > 0
        lat = out["histograms"]["request_latency_seconds"]
        assert lat["count"] == 20
        stage = [k for k in out["histograms"] if k.startswith("stage_cost")]
        assert stage
        jobs = [k for k in out["counters"] if k.startswith("jobs_completed")]
        assert jobs
        gauges = [k for k in out["gauges"] if k.startswith("core_utilization")]
        assert gauges

    def test_unmetered_world_records_nothing(self):
        from repro.apps import two_tier
        from repro.service import Request

        world = two_tier(seed=3)
        world.dispatcher.submit(Request(0.0))
        world.sim.run()
        assert world.dispatcher.metrics is None
