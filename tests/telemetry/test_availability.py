"""AvailabilityMonitor unit tests against a stub dispatcher."""

from repro.engine import Simulator
from repro.service import Request
from repro.telemetry import AvailabilityMonitor


class _StubDispatcher:
    """Just the outcome-listener surface the monitor needs."""

    def __init__(self):
        self.listeners = []

    def on_outcome(self, listener):
        self.listeners.append(listener)

    def resolve(self, outcome):
        request = Request(created_at=0.0)
        request.outcome = outcome
        for listener in self.listeners:
            listener(request)


def _advance(sim, t):
    sim.schedule_at(t, lambda: None)
    sim.run()


class TestAvailabilityMonitor:
    def test_idle_monitor_reports_full_availability(self):
        sim = Simulator(seed=0)
        monitor = AvailabilityMonitor(sim, _StubDispatcher(), window=0.1)
        assert monitor.availability == 1.0
        assert len(monitor.finish()) == 0

    def test_windows_bucket_ok_ratio(self):
        sim = Simulator(seed=0)
        stub = _StubDispatcher()
        monitor = AvailabilityMonitor(sim, stub, window=0.1)
        # Window 1: 3 ok, 1 failed. Window 2: all ok.
        _advance(sim, 0.05)
        for outcome in ("ok", "ok", "ok", "failed"):
            stub.resolve(outcome)
        _advance(sim, 0.15)
        for outcome in ("ok", "ok"):
            stub.resolve(outcome)
        series = monitor.finish()
        assert list(series.values) == [0.75, 1.0]
        assert list(series.times) == [0.1, 0.2]
        assert monitor.total_resolved == 6
        assert monitor.availability == 5 / 6

    def test_empty_windows_are_skipped(self):
        sim = Simulator(seed=0)
        stub = _StubDispatcher()
        monitor = AvailabilityMonitor(sim, stub, window=0.1)
        _advance(sim, 0.05)
        stub.resolve("ok")
        # Nothing resolves for three windows; the next point lands in
        # the window containing t=0.45 with no empty points between.
        _advance(sim, 0.45)
        stub.resolve("timeout")
        series = monitor.finish()
        assert list(series.times) == [0.1, 0.5]
        assert list(series.values) == [1.0, 0.0]
