"""Tests for the in-simulation service monitor."""

import pytest

from repro.apps import two_tier
from repro.errors import ReproError
from repro.telemetry import ServiceMonitor
from repro.workload import OpenLoopClient


def monitored_run(qps, duration=0.2, interval=0.02):
    world = two_tier(seed=8)
    instances = [world.instance("nginx"), world.instance("memcached")]
    monitor = ServiceMonitor(
        world.sim, instances, interval=interval, stop_at=duration
    )
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, stop_at=duration
    )
    monitor.start()
    client.start()
    world.sim.run(until=duration)
    return world, monitor


class TestServiceMonitor:
    def test_samples_recorded_at_interval(self):
        _, monitor = monitored_run(qps=5000, duration=0.2, interval=0.02)
        depth = monitor.queue_depth["nginx0"]
        assert 8 <= len(depth) <= 11

    def test_idle_system_shows_zero_utilisation(self):
        world = two_tier(seed=8)
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx")], interval=0.05, stop_at=0.2
        )
        monitor.start()
        world.sim.run(until=0.2)
        assert monitor.utilization["nginx0"].values.max() == 0.0

    def test_bottleneck_is_nginx_in_two_tier(self):
        # NGINX binds the 2-tier app (paper SSIV-A): under load its
        # utilisation must exceed memcached's.
        _, monitor = monitored_run(qps=40_000)
        assert monitor.bottleneck() == "nginx0"

    def test_queues_grow_past_saturation(self):
        _, light = monitored_run(qps=5_000)
        _, heavy = monitored_run(qps=75_000)  # above ~62k capacity
        assert heavy.peak_depth("nginx0") > 10 * max(
            1.0, light.peak_depth("nginx0")
        )

    def test_utilisation_tracks_load(self):
        _, monitor = monitored_run(qps=30_000)
        util = monitor.utilization["nginx0"].values
        # ~30k x ~135us / 8 cores ~ 0.5.
        assert 0.3 < util[2:].mean() < 0.75

    def test_validation(self):
        world = two_tier(seed=8)
        with pytest.raises(ReproError):
            ServiceMonitor(world.sim, [], interval=0.01)
        with pytest.raises(ReproError):
            ServiceMonitor(
                world.sim, [world.instance("nginx")], interval=0.0
            )
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx")], interval=0.01
        )
        monitor.start()
        with pytest.raises(ReproError):
            monitor.start()
