"""Tests for the in-simulation service monitor."""

import numpy as np
import pytest

from repro.apps import two_tier
from repro.errors import ReproError
from repro.telemetry import MetricsRegistry, ServiceMonitor
from repro.workload import OpenLoopClient


def monitored_run(qps, duration=0.2, interval=0.02):
    world = two_tier(seed=8)
    instances = [world.instance("nginx"), world.instance("memcached")]
    monitor = ServiceMonitor(
        world.sim, instances, interval=interval, stop_at=duration
    )
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, stop_at=duration
    )
    monitor.start()
    client.start()
    world.sim.run(until=duration)
    return world, monitor


class TestServiceMonitor:
    def test_samples_recorded_at_interval(self):
        _, monitor = monitored_run(qps=5000, duration=0.2, interval=0.02)
        depth = monitor.queue_depth["nginx0"]
        assert 8 <= len(depth) <= 11

    def test_idle_system_shows_zero_utilisation(self):
        world = two_tier(seed=8)
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx")], interval=0.05, stop_at=0.2
        )
        monitor.start()
        world.sim.run(until=0.2)
        assert monitor.utilization["nginx0"].values.max() == 0.0

    def test_bottleneck_is_nginx_in_two_tier(self):
        # NGINX binds the 2-tier app (paper SSIV-A): under load its
        # utilisation must exceed memcached's.
        _, monitor = monitored_run(qps=40_000)
        assert monitor.bottleneck() == "nginx0"

    def test_queues_grow_past_saturation(self):
        _, light = monitored_run(qps=5_000)
        _, heavy = monitored_run(qps=75_000)  # above ~62k capacity
        assert heavy.peak_depth("nginx0") > 10 * max(
            1.0, light.peak_depth("nginx0")
        )

    def test_utilisation_tracks_load(self):
        _, monitor = monitored_run(qps=30_000)
        util = monitor.utilization["nginx0"].values
        # ~30k x ~135us / 8 cores ~ 0.5.
        assert 0.3 < util[2:].mean() < 0.75

    def test_final_partial_window_is_sampled(self):
        # stop_at=0.2 with interval=0.03 leaves a 0.02s tail window;
        # it must be sampled at exactly stop_at, not dropped.
        _, monitor = monitored_run(qps=5000, duration=0.2, interval=0.03)
        times = monitor.queue_depth["nginx0"].times
        assert times[-1] == pytest.approx(0.2)
        # 6 full intervals (0.03 .. 0.18) + the closing partial sample.
        assert len(times) == 7
        deltas = np.diff(np.concatenate(([0.0], times)))
        assert deltas[-1] == pytest.approx(0.02)

    def test_exact_multiple_stop_has_no_extra_sample(self):
        # stop_at an exact multiple of the interval: the last regular
        # sample already lands on stop_at, so no partial window exists.
        _, monitor = monitored_run(qps=5000, duration=0.2, interval=0.05)
        times = monitor.queue_depth["nginx0"].times
        assert times[-1] == pytest.approx(0.2)
        assert len(times) == 4

    def test_utilisation_clamped_to_unit_interval(self):
        _, monitor = monitored_run(qps=75_000, duration=0.2, interval=0.03)
        for series in monitor.utilization.values():
            values = series.values
            assert (values >= 0.0).all()
            assert (values <= 1.0).all()

    def test_bottleneck_mean_is_time_weighted(self):
        # Two instances, hand-fed samples: "a" is busy only in a short
        # final window, "b" moderately busy throughout. A plain mean
        # would rank "a" first; the time-weighted mean must rank "b".
        world = two_tier(seed=8)
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx"), world.instance("memcached")],
            interval=0.01,
        )
        a, b = monitor.utilization.keys()
        monitor.utilization[a].append(0.9, 0.0)   # 0.9s idle window
        monitor.utilization[a].append(1.0, 1.0)   # 0.1s saturated window
        monitor.utilization[b].append(0.9, 0.4)
        monitor.utilization[b].append(1.0, 0.4)
        assert monitor.bottleneck() == b

    def test_registry_gauges_exposed(self):
        world = two_tier(seed=8)
        registry = MetricsRegistry()
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx")], interval=0.05,
            stop_at=0.2, registry=registry,
        )
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=20_000, stop_at=0.2
        )
        monitor.start()
        client.start()
        world.sim.run(until=0.2)
        gauges = registry.collect()["gauges"]
        assert 'monitor_queue_depth{instance="nginx0"}' in gauges
        util = gauges['monitor_utilization{instance="nginx0"}']
        assert 0.0 <= util <= 1.0

    def test_validation(self):
        world = two_tier(seed=8)
        with pytest.raises(ReproError):
            ServiceMonitor(world.sim, [], interval=0.01)
        with pytest.raises(ReproError):
            ServiceMonitor(
                world.sim, [world.instance("nginx")], interval=0.0
            )
        monitor = ServiceMonitor(
            world.sim, [world.instance("nginx")], interval=0.01
        )
        monitor.start()
        with pytest.raises(ReproError):
            monitor.start()
