"""Repository consistency checks: docs reference real artifacts, the
public API surface imports, every example is syntactically valid."""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestDocsReferenceRealFiles:
    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (REPO / "examples" / match).exists(), match

    def test_design_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in re.findall(r"`benchmarks/(bench_\w+\.py)`", design):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_docs_directory_files_exist(self):
        for name in (
            "modeling_guide.md",
            "internals.md",
            "json_reference.md",
            "resilience.md",
        ):
            assert (REPO / "docs" / name).exists()

    def test_spec_directory_complete(self):
        spec = REPO / "specs" / "two_tier"
        for name in ("machines.json", "graph.json", "path.json", "client.json"):
            assert (spec / name).exists(), name
        assert list((spec / "services").glob("*.json"))


class TestPublicApiSurface:
    PACKAGES = [
        "repro",
        "repro.analysis",
        "repro.apps",
        "repro.bighouse",
        "repro.config",
        "repro.distributions",
        "repro.engine",
        "repro.experiments",
        "repro.faults",
        "repro.hardware",
        "repro.power",
        "repro.resilience",
        "repro.scaling",
        "repro.service",
        "repro.telemetry",
        "repro.testbed",
        "repro.topology",
        "repro.workload",
    ]

    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports_and_all_resolves(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name


class TestExamplesParse:
    @pytest.mark.parametrize(
        "path", sorted((REPO / "examples").glob("*.py")), ids=lambda p: p.name
    )
    def test_example_is_valid_python_with_main(self, path):
        tree = ast.parse(path.read_text())
        names = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names, f"{path.name} has no main()"
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


class TestPublicClassesDocumented:
    def test_every_public_class_and_function_has_docstring(self):
        missing = []
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in tree.body:  # top-level only
                if isinstance(
                    node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"undocumented public items: {missing}"
