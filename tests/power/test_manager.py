"""Behavioural tests for the power manager against a controllable
single-tier world."""

import pytest

from repro.errors import ConfigError
from repro.hardware import GHZ
from repro.power import PowerManager
from repro.telemetry import WindowedLatency, parse_slo
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


def make_managed_world(sim, network, qps, service_time=1e-3, qos=20e-3,
                       interval=0.05, cores=1):
    cluster, deployment, dispatcher = build_world(sim, network)
    svc = build_instance(
        sim, cluster, "web0", "node0", service_time=service_time,
        cores=cores, tier="web",
    )
    deployment.add_instance(svc)
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    window = WindowedLatency(window=interval * 4)
    client = OpenLoopClient(
        sim, dispatcher, arrivals=qps, stop_at=2.0,
        on_complete=lambda r: window.record(r.completed_at, r.latency),
    )
    manager = PowerManager(
        sim, {"web": [svc]}, window, qos_target=qos,
        decision_interval=interval, min_samples=5,
    )
    return svc, client, manager


class TestPowerManagerBehaviour:
    def test_ample_slack_slows_the_tier_down(self, sim, network):
        # Load far below capacity and QoS far above latency: the manager
        # should walk the frequency down toward the floor.
        svc, client, manager = make_managed_world(
            sim, network, qps=50, service_time=1e-4, qos=50e-3
        )
        client.start()
        manager.start()
        sim.run(until=2.0)
        assert svc.frequency < 2.6 * GHZ
        assert manager.violation_rate == 0.0
        assert manager.decisions > 20

    def test_violations_force_speed_up(self, sim, network):
        # QoS of 1.5x the service time: at min frequency the service
        # time alone (2.6/1.2 ~ 2.2x) violates, so the manager must
        # keep frequency high.
        svc, client, manager = make_managed_world(
            sim, network, qps=100, service_time=1e-3, qos=1.5e-3
        )
        svc.set_frequency(1.2 * GHZ)
        client.start()
        manager.start()
        sim.run(until=2.0)
        assert svc.frequency == 2.6 * GHZ
        assert manager.violations > 0

    def test_decision_telemetry_recorded(self, sim, network):
        svc, client, manager = make_managed_world(sim, network, qps=100)
        client.start()
        manager.start()
        sim.run(until=1.0)
        assert len(manager.p99_series) == manager.decisions
        assert len(manager.frequency_series["web"]) == manager.decisions

    def test_no_decisions_without_traffic(self, sim, network):
        svc, client, manager = make_managed_world(sim, network, qps=100)
        manager.start()  # client never started
        sim.run(until=1.0)
        assert manager.decisions == 0
        assert manager.violation_rate == 0.0


class TestValidation:
    def test_bad_parameters(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        svc = build_instance(sim, cluster, "web0", "node0", tier="web")
        window = WindowedLatency(1.0)
        with pytest.raises(ConfigError):
            PowerManager(sim, {}, window, qos_target=1e-3)
        with pytest.raises(ConfigError):
            PowerManager(sim, {"web": [svc]}, window, qos_target=0.0)
        with pytest.raises(ConfigError):
            PowerManager(
                sim, {"web": [svc]}, window, qos_target=1e-3,
                decision_interval=0.0,
            )
        with pytest.raises(ConfigError):
            PowerManager(sim, {"web": [svc]}, window)  # neither target


class TestSloObjective:
    def _parts(self, sim, network):
        cluster, _, _ = build_world(sim, network)
        svc = build_instance(sim, cluster, "web0", "node0", tier="web")
        return svc, WindowedLatency(1.0)

    def test_slo_supplies_target_and_percentile(self, sim, network):
        svc, window = self._parts(sim, network)
        manager = PowerManager(
            sim, {"web": [svc]}, window, slo=parse_slo("p95<5ms")
        )
        assert manager.qos_target == pytest.approx(5e-3)
        assert manager.percentile == 95.0
        assert manager.slo is not None

    def test_matching_explicit_target_is_accepted(self, sim, network):
        svc, window = self._parts(sim, network)
        manager = PowerManager(
            sim, {"web": [svc]}, window, qos_target=5e-3,
            slo=parse_slo("p99<5ms"),
        )
        assert manager.qos_target == pytest.approx(5e-3)

    def test_conflicting_explicit_target_rejected(self, sim, network):
        svc, window = self._parts(sim, network)
        with pytest.raises(ConfigError, match="conflicting"):
            PowerManager(
                sim, {"web": [svc]}, window, qos_target=10e-3,
                slo=parse_slo("p99<5ms"),
            )

    def test_availability_slo_rejected(self, sim, network):
        # Algorithm 1 senses a latency percentile; an availability
        # objective has no threshold in seconds to act on.
        svc, window = self._parts(sim, network)
        with pytest.raises(ConfigError, match="latency SLO"):
            PowerManager(
                sim, {"web": [svc]}, window, slo=parse_slo("avail>99.9%")
            )
