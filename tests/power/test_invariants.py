"""Controller invariants: whatever the traffic does, actuators stay
within their physical ranges."""

import numpy as np
import pytest

from repro.hardware import GHZ
from repro.power import PowerManager
from repro.scaling import ActiveSetBalancer, AutoScaler
from repro.telemetry import WindowedLatency
from repro.topology import PathNode, PathTree
from repro.workload import MMPPArrivals, OpenLoopClient

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


class TestPowerManagerInvariants:
    def test_frequencies_always_on_ladder(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        svc = build_instance(
            sim, cluster, "web0", "node0", service_time=3e-4, tier="web"
        )
        deployment.add_instance(svc)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        window = WindowedLatency(0.05)
        # Bursty arrivals to force both speed-ups and slow-downs.
        client = OpenLoopClient(
            sim, dispatcher,
            arrivals=MMPPArrivals(low_qps=200, high_qps=3000, mean_dwell=0.2),
            stop_at=3.0,
            on_complete=lambda r: window.record(r.completed_at, r.latency),
        )
        manager = PowerManager(
            sim, {"web": [svc]}, window, qos_target=2e-3,
            decision_interval=0.05, min_samples=5,
        )
        client.start()
        manager.start()
        sim.run(until=3.0)
        ladder = svc.cores.cores[0].ladder
        freqs = manager.frequency_series["web"].values
        assert manager.decisions > 30
        assert (freqs >= ladder.min - 1e-6).all()
        assert (freqs <= ladder.max + 1e-6).all()
        for f in np.unique(freqs):
            assert float(f) in ladder

    def test_decision_count_matches_series_lengths(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        svc = build_instance(sim, cluster, "web0", "node0", tier="web")
        deployment.add_instance(svc)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        window = WindowedLatency(0.05)
        client = OpenLoopClient(
            sim, dispatcher, arrivals=500, stop_at=1.0,
            on_complete=lambda r: window.record(r.completed_at, r.latency),
        )
        manager = PowerManager(
            sim, {"web": [svc]}, window, qos_target=5e-3,
            decision_interval=0.1, min_samples=5,
        )
        client.start()
        manager.start()
        sim.run(until=1.0)
        assert len(manager.p99_series) == manager.decisions
        assert manager.violations <= manager.decisions


class TestAutoScalerInvariants:
    def test_active_count_always_in_range(self, sim, network):
        cluster, deployment, dispatcher = build_world(
            sim, network, machines=4, cores=4
        )
        instances = [
            build_instance(sim, cluster, f"web{i}", f"node{i}",
                           service_time=5e-4, cores=1, tier="web")
            for i in range(4)
        ]
        for inst in instances:
            deployment.add_instance(inst)
        balancer = ActiveSetBalancer(4, initial_active=2)
        deployment._balancers["web"] = balancer
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        scaler = AutoScaler(sim, instances, balancer, decision_interval=0.05)
        client = OpenLoopClient(
            sim, dispatcher,
            arrivals=MMPPArrivals(low_qps=100, high_qps=6000, mean_dwell=0.3),
            stop_at=3.0,
        )
        scaler.start()
        client.start()
        sim.run(until=3.0)
        active = scaler.active_series.values
        assert (active >= 1).all()
        assert (active <= 4).all()
        utils = scaler.utilization_series.values
        assert (utils >= 0).all()
        assert (utils <= 1.0 + 1e-9).all()
