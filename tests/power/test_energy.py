"""Tests for the core energy model and run accounting."""

import pytest

from repro.errors import ReproError
from repro.power import CorePowerModel, energy_report, tier_energy
from repro.telemetry import TimeSeries

GHZ = 1e9


class TestCorePowerModel:
    def test_power_at_max_frequency(self):
        model = CorePowerModel(static_w=5.0, dynamic_max_w=15.0, f_max=2.6 * GHZ)
        assert model.power(2.6 * GHZ) == pytest.approx(20.0)

    def test_cubic_dynamic_scaling(self):
        model = CorePowerModel(static_w=5.0, dynamic_max_w=16.0, f_max=2.0 * GHZ)
        # Half frequency: dynamic power drops 8x.
        assert model.power(1.0 * GHZ) == pytest.approx(5.0 + 2.0)

    def test_invalid_frequency(self):
        with pytest.raises(ReproError):
            CorePowerModel().power(0.0)


class TestTierEnergy:
    def make_series(self, samples):
        series = TimeSeries("freq")
        for t, f in samples:
            series.append(t, f)
        return series

    def test_constant_frequency_integrates(self):
        model = CorePowerModel(static_w=5.0, dynamic_max_w=15.0, f_max=2.6 * GHZ)
        series = self.make_series([(0.0, 2.6 * GHZ)])
        # 20 W x 10 s x 2 cores = 400 J.
        assert tier_energy(series, 2, model, t_end=10.0) == pytest.approx(400.0)

    def test_piecewise_frequency(self):
        model = CorePowerModel(static_w=0.0, dynamic_max_w=8.0, f_max=2.0 * GHZ)
        series = self.make_series([(0.0, 2.0 * GHZ), (5.0, 1.0 * GHZ)])
        # 5s at 8W + 5s at 1W, one core.
        assert tier_energy(series, 1, model, t_end=10.0) == pytest.approx(45.0)

    def test_validation(self):
        model = CorePowerModel()
        series = self.make_series([(0.0, 2.6 * GHZ)])
        with pytest.raises(ReproError):
            tier_energy(series, 0, model, t_end=1.0)
        with pytest.raises(ReproError):
            tier_energy(TimeSeries("empty"), 1, model, t_end=1.0)
        late = self.make_series([(5.0, 2.6 * GHZ)])
        with pytest.raises(ReproError):
            tier_energy(late, 1, model, t_end=1.0)


class TestEnergyReport:
    def test_savings_fraction(self):
        model = CorePowerModel(static_w=5.0, dynamic_max_w=15.0, f_max=2.6 * GHZ)
        low = TimeSeries("f")
        low.append(0.0, 1.2 * GHZ)
        report = energy_report(
            {"tier": low}, {"tier": 4}, t_end=10.0, model=model
        )
        assert 0.0 < report.savings_fraction < 1.0
        assert report.baseline_joules == pytest.approx(20.0 * 4 * 10.0)

    def test_running_at_max_saves_nothing(self):
        model = CorePowerModel()
        series = TimeSeries("f")
        series.append(0.0, model.f_max)
        report = energy_report(
            {"tier": series}, {"tier": 2}, t_end=5.0, model=model
        )
        assert report.savings_fraction == pytest.approx(0.0)

    def test_power_managed_run_saves_energy(self):
        """End to end: a short Algorithm 1 run must consume less than
        the run-at-max baseline."""
        from repro.experiments.power_mgmt import run_power_experiment

        result = run_power_experiment(decision_interval=0.2, duration=6.0)
        report = energy_report(
            result.frequency_series,
            {"nginx": 2, "memcached": 1},
            t_end=6.0,
        )
        assert report.savings_fraction > 0.0
