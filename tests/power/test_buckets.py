"""Tests for the power manager's latency buckets."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.power import LatencyBuckets, no_more_relaxed
from repro.power.buckets import MIN_PREFERENCE


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestNoMoreRelaxed:
    def test_strictly_tighter_is_admissible(self):
        assert no_more_relaxed((1.0, 1.0), (2.0, 2.0))

    def test_tighter_in_one_tier_is_admissible(self):
        assert no_more_relaxed((1.0, 3.0), (2.0, 2.0))

    def test_equal_is_inadmissible(self):
        assert not no_more_relaxed((2.0, 2.0), (2.0, 2.0))

    def test_looser_everywhere_is_inadmissible(self):
        assert not no_more_relaxed((3.0, 3.0), (2.0, 2.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            no_more_relaxed((1.0,), (1.0, 2.0))


class TestBucketClassification:
    def test_bucket_for_ranges(self):
        buckets = LatencyBuckets(num_buckets=10, span=10e-3, num_tiers=2)
        assert buckets.bucket_for(0.5e-3).index == 0
        assert buckets.bucket_for(9.5e-3).index == 9
        assert buckets.bucket_for(50e-3).index == 9  # clamped

    def test_negative_latency_rejected(self):
        buckets = LatencyBuckets(10, 10e-3, 2)
        with pytest.raises(ConfigError):
            buckets.bucket_for(-1.0)

    def test_observe_inserts_and_boosts(self):
        buckets = LatencyBuckets(10, 10e-3, 2)
        bucket = buckets.observe(2.5e-3, (1e-3, 1.5e-3))
        assert bucket.index == 2
        assert bucket.tuples == [(1e-3, 1.5e-3)]
        assert bucket.preference > 1.0

    def test_tier_count_enforced(self):
        buckets = LatencyBuckets(10, 10e-3, 2)
        with pytest.raises(ConfigError):
            buckets.observe(1e-3, (1e-3,))

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyBuckets(0, 1.0, 1)
        with pytest.raises(ConfigError):
            LatencyBuckets(1, 0.0, 1)
        with pytest.raises(ConfigError):
            LatencyBuckets(1, 1.0, 0)


class TestFailingList:
    def test_failure_blocks_more_relaxed_inserts(self):
        buckets = LatencyBuckets(4, 8e-3, 2)
        bucket = buckets.bucket_for(1e-3)
        bucket.record_failure((1e-3, 1e-3))
        assert not bucket.try_insert((2e-3, 2e-3))  # looser everywhere
        assert bucket.try_insert((0.5e-3, 2e-3))  # tighter in tier 0

    def test_failure_purges_invalidated_tuples(self):
        buckets = LatencyBuckets(4, 8e-3, 2)
        bucket = buckets.bucket_for(1e-3)
        bucket.try_insert((2e-3, 2e-3))
        bucket.try_insert((0.5e-3, 0.5e-3))
        bucket.record_failure((1e-3, 1e-3))
        assert bucket.tuples == [(0.5e-3, 0.5e-3)]

    def test_penalise_floors_preference(self):
        buckets = LatencyBuckets(4, 8e-3, 2)
        bucket = buckets.bucket_for(1e-3)
        for _ in range(100):
            bucket.penalise()
        assert bucket.preference == MIN_PREFERENCE


class TestChooseTarget:
    def test_empty_returns_none(self, rng):
        buckets = LatencyBuckets(4, 8e-3, 2)
        assert buckets.choose_target(rng) == (None, None)

    def test_choice_comes_from_populated_bucket(self, rng):
        buckets = LatencyBuckets(4, 8e-3, 2)
        buckets.observe(1e-3, (0.5e-3, 0.5e-3))
        bucket, target = buckets.choose_target(rng)
        assert bucket.index == 0
        assert target == (0.5e-3, 0.5e-3)

    def test_preference_weights_bias_choice(self, rng):
        buckets = LatencyBuckets(4, 8e-3, 1)
        buckets.observe(1e-3, (1e-3,))
        buckets.observe(5e-3, (5e-3,))
        hot = buckets.bucket_for(5e-3)
        for _ in range(20):
            hot.boost()
        picks = [buckets.choose_target(rng)[0].index for _ in range(200)]
        assert picks.count(hot.index) > 150
