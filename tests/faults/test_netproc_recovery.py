"""Regression: crash→recover must leave connections usable.

A message that dies en route — its netproc relay crashes or refuses it,
or the link partitions mid-flight — must still consume its in-order
delivery slot on the connection. Before the fix, the lost sequence
number wedged every later message on that (connection, receiver)
direction permanently, so a revived instance looked up to the balancer
but its pools never carried traffic again.
"""

import pytest

from repro.apps import builders
from repro.faults import FaultInjector, FaultPlan
from repro.resilience import ResiliencePolicy
from repro.workload import OpenLoopClient


def _parked_deliveries(deployment):
    return sum(
        len(waiting)
        for pool in deployment.pools
        for conn in pool.connections
        for waiting in conn._parked.values()
    )


@pytest.mark.parametrize("disposition", ["fail", "drop"])
def test_netproc_crash_recover_unwedges_connections(disposition):
    world = builders.two_tier(seed=1)
    plan = (
        FaultPlan()
        .crash(0.3, "netproc@server0", disposition=disposition)
        .recover(0.5, "netproc@server0")
    )
    FaultInjector(world.sim, world.deployment, world.cluster.network, plan).arm()
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        300.0,
        stop_at=1.5,
        resilience=ResiliencePolicy(timeout=0.2),
    )
    client.start()
    world.sim.run(until=2.5)

    # Every in-order slot was consumed: nothing parked behind a lost seq.
    assert _parked_deliveries(world.deployment) == 0
    # Every request resolved (losses surface as timeouts, not hangs).
    assert client.requests_completed == client.requests_sent
    # The revived instance serves traffic again: goodput after recovery
    # is back near the offered 300 QPS.
    recovered_goodput = client.throughput(1.0, 1.5)
    assert recovered_goodput > 250.0


def test_instance_crash_recover_under_load_resumes_goodput():
    """The satellite's scenario: crash→recover plan under load against a
    tier instance; the revived replica must rejoin the balancer rotation
    and its pools must carry traffic."""
    world = builders.load_balanced(seed=3, scale_out=2)
    plan = FaultPlan().crash(0.4, "web0").recover(0.8, "web0")
    FaultInjector(world.sim, world.deployment, world.cluster.network, plan).arm()
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        200.0,
        stop_at=2.0,
        resilience=ResiliencePolicy(timeout=0.25),
    )
    client.start()
    world.sim.run(until=3.0)

    assert _parked_deliveries(world.deployment) == 0
    assert client.requests_completed == client.requests_sent
    web0 = world.deployment.find_instance("web0")
    assert web0.healthy
    # web0 took real work after recovery, not just before the crash.
    assert web0.jobs_completed > 0
    assert client.throughput(1.2, 2.0) > 150.0
