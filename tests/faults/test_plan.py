"""Fault plan construction, validation, and the faults.json loader."""

import json

import pytest

from repro.errors import ConfigError, FaultError
from repro.faults import (
    CRASH,
    Fault,
    FaultPlan,
    load_fault_plan,
    parse_fault,
    parse_fault_plan,
)


class TestFaultValidation:
    def test_instance_kind_needs_instance(self):
        with pytest.raises(FaultError):
            Fault(at=1.0, kind="crash")

    def test_link_kind_needs_both_endpoints(self):
        with pytest.raises(FaultError):
            Fault(at=1.0, kind="partition", src="m0")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            Fault(at=1.0, kind="meteor", instance="leaf_0")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            Fault(at=-1.0, kind="crash", instance="leaf_0")

    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(FaultError):
            Fault(at=1.0, kind="slow", instance="leaf_0", factor=0.5)


class TestFaultPlan:
    def test_builders_are_chainable_and_sorted(self):
        plan = (
            FaultPlan()
            .recover(2.0, "leaf_0")
            .crash(1.0, "leaf_0")
            .slow(0.5, "leaf_1", factor=10.0)
            .partition(1.5, "m0", "m1")
            .heal(1.8, "m0", "m1")
            .degrade_link(0.7, "m0", "m1", factor=3.0)
            .restore_link(0.9, "m0", "m1")
            .drain(0.2, "leaf_2")
        )
        assert len(plan) == 8
        times = [fault.at for fault in plan.sorted()]
        assert times == sorted(times)
        assert plan.sorted()[1].kind == "slow"


class TestLoader:
    def test_parse_round_trip(self):
        plan = parse_fault_plan(
            {
                "faults": [
                    {"at": 1.0, "kind": "crash", "instance": "leaf_0"},
                    {"at": 2.0, "kind": "recover", "instance": "leaf_0"},
                    {"at": 0.5, "kind": "partition", "src": "m0", "dst": "m1"},
                ]
            },
            "faults.json",
        )
        assert len(plan) == 3
        assert plan.sorted()[0].kind == "partition"

    def test_bare_list_accepted(self):
        plan = parse_fault_plan(
            [{"at": 0.0, "kind": "crash", "instance": "x"}], "faults.json"
        )
        assert len(plan) == 1 and plan.faults[0].kind == CRASH

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault fields"):
            parse_fault({"at": 1.0, "kind": "crash", "when": 2}, "f")

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ConfigError, match="'at' and 'kind'"):
            parse_fault({"kind": "crash", "instance": "x"}, "f")

    def test_non_object_entry_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_plan(["crash"], "faults.json")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_fault_plan(tmp_path / "faults.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_fault_plan(path)

    def test_load_valid_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(
            json.dumps(
                {"faults": [{"at": 1.0, "kind": "slow", "instance": "a",
                             "factor": 4.0}]}
            )
        )
        plan = load_fault_plan(path)
        assert plan.faults[0].factor == 4.0


class TestShardFaults:
    def test_builders_and_partition_of_the_plan(self):
        plan = (
            FaultPlan()
            .crash(1.0, "leaf_0")
            .kill_shard(1, 2)
            .hang_shard(3, 5)
        )
        assert [f.kind for f in plan.shard_faults()] == [
            "shard_kill", "shard_hang",
        ]
        assert [f.kind for f in plan.sim_faults()] == ["crash"]
        assert plan.shard_faults()[0].shard == 1
        assert plan.shard_faults()[0].at == 2

    def test_shard_kind_needs_a_shard(self):
        with pytest.raises(FaultError, match="shard"):
            Fault(at=2.0, kind="shard_kill")
        with pytest.raises(FaultError):
            Fault(at=2.0, kind="shard_hang", shard=-1)

    def test_shard_fault_fires_at_a_round_index(self):
        with pytest.raises(FaultError, match="round index"):
            Fault(at=2.5, kind="shard_kill", shard=1)
        Fault(at=2.0, kind="shard_kill", shard=1)  # integral float ok

    def test_loader_parses_shard_field(self):
        plan = parse_fault_plan(
            {"faults": [{"at": 3, "kind": "shard_kill", "shard": 1}]},
            "faults.json",
        )
        assert plan.faults[0].shard == 1
        assert plan.faults[0].kind == "shard_kill"

    def test_injector_rejects_shard_kinds(self):
        from repro.engine import Simulator
        from repro.faults import FaultInjector

        plan = FaultPlan().kill_shard(1, 2)
        with pytest.raises(FaultError, match="--shards"):
            FaultInjector(Simulator(), {}, None, plan).arm()
