"""Fixtures for fault-injection tests (reuses the topology builders)."""

from ..topology.conftest import network, sim  # noqa: F401 (fixture reuse)
