"""End-to-end fault injection: crashes, drains, stragglers, link faults,
and the crash/recover availability story."""

import pytest

from repro.engine import Simulator
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultPlan
from repro.resilience import ResiliencePolicy, RetryPolicy
from repro.service import Request
from repro.telemetry import AvailabilityMonitor
from repro.topology import PathNode, PathTree

from ..topology.conftest import build_instance, build_world


def two_replica_world(sim, network, service_time=1e-3):
    cluster, deployment, dispatcher = build_world(sim, network)
    for i, machine in enumerate(("node0", "node1")):
        deployment.add_instance(
            build_instance(sim, cluster, f"web{i}", machine,
                           service_time=service_time, tier="web")
        )
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    return cluster, deployment, dispatcher


def drive(sim, dispatcher, until, spacing, policy=None):
    done = []
    t = 0.0
    while t < until:
        req = Request(created_at=t)
        sim.schedule_at(
            t, dispatcher.submit, req, done.append, "client", "client", policy
        )
        t += spacing
    return done


class TestInstanceFaults:
    def test_crash_fails_in_flight_and_recover_resumes(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().crash(5e-3, "web0").recover(10e-3, "web0")
        injector = FaultInjector(sim, deployment, network, plan).arm()
        done = drive(sim, dispatcher, until=20e-3, spacing=0.5e-3)
        sim.run()
        assert len(injector.log) == 2
        web0 = deployment.find_instance("web0")
        assert web0.state == "up"
        assert web0.crashes == 1
        failed = [r for r in done if r.outcome == "failed"]
        assert failed, "crash should kill in-flight work"
        # Everything not caught mid-flight still completes: the balancer
        # routes around the dead replica.
        assert [r for r in done if r.ok]
        assert all(r.outcome is not None for r in done)

    def test_drain_is_graceful(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().drain(2e-3, "web0")
        FaultInjector(sim, deployment, network, plan).arm()
        done = drive(sim, dispatcher, until=10e-3, spacing=0.5e-3)
        sim.run()
        web0 = deployment.find_instance("web0")
        assert web0.state == "draining"
        # Graceful: nothing fails, the drained replica takes no new work.
        assert all(r.ok for r in done)
        completed_before_drain = web0.jobs_completed
        assert completed_before_drain < len(done) / 2 + 2

    def test_slow_makes_a_straggler(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().slow(4.9e-3, "web0", factor=10.0)
        FaultInjector(sim, deployment, network, plan).arm()
        done = drive(sim, dispatcher, until=10e-3, spacing=1e-3)
        sim.run()
        latencies = [r.latency for r in done]
        # Requests landing on web0 after the fault take ~10 ms service
        # instead of ~1 ms; before it, nobody does.
        assert max(latencies) > 8e-3
        assert min(latencies) < 2e-3


class TestLinkFaults:
    def test_degrade_link_stretches_latency(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().degrade_link(
            4.9e-3, "client", "node0", factor=100.0
        ).restore_link(9.9e-3, "client", "node0")
        FaultInjector(sim, deployment, network, plan).arm()
        done = drive(sim, dispatcher, until=15e-3, spacing=1e-3)
        sim.run()
        degraded = [
            r.latency for r in done if 5e-3 <= r.created_at < 10e-3
        ]
        normal = [r.latency for r in done if r.created_at < 5e-3]
        # Propagation is 10us; a 100x factor adds ~1ms on the degraded
        # half of the round-robin rotation.
        assert max(degraded) > max(normal) + 0.5e-3

    def test_partition_and_heal(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().partition(
            1e-3, "client", "node0"
        ).heal(6e-3, "client", "node0")
        FaultInjector(sim, deployment, network, plan).arm()
        policy = ResiliencePolicy(timeout=3e-3)
        done = drive(sim, dispatcher, until=12e-3, spacing=1e-3, policy=policy)
        sim.run()
        assert dispatcher.messages_dropped >= 1
        assert [r for r in done if r.outcome == "timeout"]
        # After the heal everything resolves ok again.
        assert all(r.ok for r in done if r.created_at >= 7e-3)

    def test_link_fault_without_network_fails_fast_at_arm(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().partition(1e-3, "client", "node0")
        with pytest.raises(FaultError, match="NetworkFabric"):
            FaultInjector(sim, deployment, network=None, plan=plan).arm()


class TestArming:
    def test_arm_is_idempotent(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().crash(1e-3, "web0")
        injector = FaultInjector(sim, deployment, network, plan)
        injector.arm().arm()
        sim.run()
        assert len(injector.log) == 1

    def test_past_fault_rejected(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        sim.schedule(5e-3, lambda: None)
        sim.run()
        plan = FaultPlan().crash(1e-3, "web0")
        with pytest.raises(FaultError, match="in the past"):
            FaultInjector(sim, deployment, network, plan).arm()

    def test_unknown_instance_fails_fast_at_arm(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().crash(1e-3, "ghost")
        with pytest.raises(FaultError, match="unknown instance 'ghost'"):
            FaultInjector(sim, deployment, network, plan).arm()

    def test_unknown_machine_fails_fast_at_arm(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().fail_machine(1e-3, "ghost-node")
        with pytest.raises(FaultError, match="unknown machine 'ghost-node'"):
            FaultInjector(
                sim, deployment, network, plan, cluster=cluster
            ).arm()

    def test_machine_fault_without_cluster_fails_fast(self, sim, network):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().fail_machine(1e-3, "node0")
        with pytest.raises(FaultError, match="needs a Cluster"):
            FaultInjector(sim, deployment, network, plan).arm()

    def test_unknown_link_endpoint_fails_fast_when_cluster_given(
        self, sim, network
    ):
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().partition(1e-3, "node0", "ghost-node")
        with pytest.raises(FaultError, match="unknown machine 'ghost-node'"):
            FaultInjector(
                sim, deployment, network, plan, cluster=cluster
            ).arm()


class TestAvailabilityStory:
    """The acceptance scenario: crash one of two replicas under load,
    watch availability dip, recover, watch it climb back — with the
    survivor carrying the traffic in between."""

    def build(self, seed):
        from repro.distributions import Deterministic
        from repro.hardware import NetworkFabric

        sim = Simulator(seed=seed)
        network = NetworkFabric(
            propagation=Deterministic(10e-6),
            loopback=Deterministic(1e-6),
            bandwidth_bytes_per_s=1e12,
        )
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().crash(0.100, "web0").recover(0.200, "web0")
        injector = FaultInjector(sim, deployment, network, plan).arm()
        monitor = AvailabilityMonitor(sim, dispatcher, window=0.025)
        done = drive(sim, dispatcher, until=0.3, spacing=0.4e-3)
        return sim, deployment, dispatcher, injector, monitor, done

    def test_dip_and_recovery(self):
        sim, deployment, dispatcher, injector, monitor, done = self.build(0)
        web1_before = deployment.find_instance("web1").jobs_completed
        sim.run()
        series = monitor.finish()
        values = list(series.values)
        assert min(values) < 1.0, "crash must dent availability"
        assert values[-1] == 1.0, "availability must recover"
        assert monitor.availability > 0.9, "survivor carries the load"
        # During the outage the survivor completed real work.
        web1 = deployment.find_instance("web1")
        assert web1.jobs_completed > web1_before
        outage_ok = [
            r for r in done if 0.11 <= r.created_at < 0.19 and r.ok
        ]
        assert outage_ok, "requests complete via the surviving replica"

    def test_retries_mask_the_crash(self):
        """With retries on, the in-flight failures get a second attempt
        on the survivor and goodput barely moves."""
        from repro.distributions import Deterministic
        from repro.hardware import NetworkFabric

        sim = Simulator(seed=0)
        network = NetworkFabric(
            propagation=Deterministic(10e-6),
            loopback=Deterministic(1e-6),
            bandwidth_bytes_per_s=1e12,
        )
        cluster, deployment, dispatcher = two_replica_world(sim, network)
        plan = FaultPlan().crash(0.100, "web0").recover(0.200, "web0")
        FaultInjector(sim, deployment, network, plan).arm()
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, backoff_base=1e-4, jitter=0.0)
        )
        done = drive(sim, dispatcher, until=0.3, spacing=0.4e-3, policy=policy)
        sim.run()
        assert all(r.ok for r in done)
        assert dispatcher.retries_issued >= 1

    def test_fault_history_is_deterministic(self):
        runs = []
        for _ in range(2):
            sim, deployment, dispatcher, injector, monitor, done = self.build(7)
            sim.run()
            runs.append(
                (
                    [(t, f.kind, f.instance) for t, f in injector.log],
                    [(r.created_at, r.outcome, r.latency) for r in done],
                    list(monitor.finish().values),
                )
            )
        assert runs[0] == runs[1]
