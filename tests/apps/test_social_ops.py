"""Tests for the extended social-network operations."""

import pytest

from repro.apps import add_social_operations, social_network
from repro.workload import OpenLoopClient, RequestMix


def drive_typed(world, request_type, n=10, qps=300):
    mix = RequestMix.single(request_type)
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, mix=mix, max_requests=n
    )
    client.start()
    world.sim.run()
    return client


class TestComposePost:
    def test_writes_hit_post_db_and_cache(self):
        world = social_network(seed=1)
        add_social_operations(world)
        drive_typed(world, "compose_post", n=10)
        assert world.instance("post_mongodb").jobs_completed == 10
        assert world.instance("post_memcached").jobs_completed == 10
        assert world.instance("media_mongodb").jobs_completed == 10

    def test_author_validated_in_parallel(self):
        world = social_network(seed=1)
        add_social_operations(world)
        drive_typed(world, "compose_post", n=10)
        assert world.instance("user_memcached").jobs_completed == 10


class TestFollow:
    def test_touches_only_user_stack(self):
        world = social_network(seed=1)
        add_social_operations(world)
        drive_typed(world, "follow", n=10)
        assert world.instance("user_mongodb").jobs_completed == 10
        assert world.instance("post_mongodb").jobs_completed == 0
        assert world.instance("media_mongodb").jobs_completed == 0


class TestReadTimeline:
    def test_flows_through_post_and_media(self):
        world = social_network(seed=1)
        add_social_operations(world)
        drive_typed(world, "read_timeline", n=10)
        assert world.instance("post_memcached").jobs_completed == 10
        assert world.instance("media_memcached").jobs_completed == 10
        assert world.instance("user_mongodb").jobs_completed == 0


class TestMixedWorkload:
    def test_default_mix_routes_all_types(self):
        world = social_network(seed=1)
        mix = add_social_operations(world)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=500, mix=mix,
            max_requests=300,
        )
        client.start()
        world.sim.run()
        assert client.requests_completed == 300
        types = {r.request_type for r in client.completed_requests}
        assert types == {
            "read_post", "read_timeline", "compose_post", "follow"
        }

    def test_untyped_requests_keep_paper_behaviour(self):
        world = social_network(seed=1)
        add_social_operations(world)
        client = drive_typed(world, "default", n=5)
        # "default" has no typed tree: the untyped read_post tree runs.
        assert client.requests_completed == 5
        assert world.instance("user_mongodb").jobs_completed == 5

    def test_follow_is_the_cheapest_operation(self):
        # follow touches a single storage stack; read_post traverses
        # three MongoDB-backed branches with a synchronisation point.
        world = social_network(seed=2)
        add_social_operations(world)
        reads = drive_typed(world, "read_post", n=40)
        world2 = social_network(seed=2)
        add_social_operations(world2)
        follows = drive_typed(world2, "follow", n=40)
        assert follows.latencies.mean() < reads.latencies.mean()
