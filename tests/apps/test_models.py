"""Tests for the individual application models (structure and
calibration invariants)."""

import pytest

from repro.apps import calibration as cal
from repro.apps import (
    make_memcached,
    make_mongodb,
    make_netproc,
    make_nginx,
    make_thrift,
    new_world,
)
from repro.apps import memcached as mc_mod
from repro.apps import nginx as nginx_mod
from repro.apps import thrift as thrift_mod
from repro.hardware import Machine
from repro.service import EpollQueue, SingleQueue, SocketQueue


@pytest.fixture
def world():
    w = new_world(seed=0)
    w.cluster.add_machine(Machine("server0", 32))
    return w


class TestMemcachedModel:
    """The Listing 1 structure."""

    def test_stage_queue_types(self, world):
        inst = make_memcached(world, "server0")
        assert isinstance(inst.stage(mc_mod.EPOLL).queue, EpollQueue)
        assert isinstance(inst.stage(mc_mod.SOCKET_READ).queue, SocketQueue)
        assert isinstance(inst.stage(mc_mod.PROCESSING_READ).queue, SingleQueue)
        assert isinstance(inst.stage(mc_mod.SOCKET_SEND).queue, SingleQueue)

    def test_batching_flags_match_listing1(self, world):
        inst = make_memcached(world, "server0")
        assert inst.stage(mc_mod.EPOLL).batching
        assert inst.stage(mc_mod.SOCKET_READ).batching
        assert not inst.stage(mc_mod.PROCESSING_READ).batching
        assert not inst.stage(mc_mod.SOCKET_SEND).batching

    def test_read_and_write_paths_same_shape(self, world):
        inst = make_memcached(world, "server0")
        read = inst.selector.get_by_name(mc_mod.READ_PATH)
        write = inst.selector.get_by_name(mc_mod.WRITE_PATH)
        assert len(read) == len(write) == 4
        # Same order, different processing stage distributions only.
        assert read.stage_ids[0] == write.stage_ids[0] == mc_mod.EPOLL

    def test_write_costs_more_than_read(self, world):
        inst = make_memcached(world, "server0")
        read_cost = inst.stage(mc_mod.PROCESSING_READ).mean_cost()
        write_cost = inst.stage(mc_mod.PROCESSING_WRITE).mean_cost()
        assert write_cost > read_cost

    def test_socket_read_cost_scales_with_bytes(self, world):
        inst = make_memcached(world, "server0")
        stage = inst.stage(mc_mod.SOCKET_READ)
        small = stage.mean_cost(batch_size=1, mean_bytes=64)
        large = stage.mean_cost(batch_size=1, mean_bytes=4096)
        assert large > small

    def test_threads_pin_cores(self, world):
        inst = make_memcached(world, "server0", threads=3)
        assert len(inst.cores) == 3
        assert inst.model.concurrency == 3


class TestNginxModel:
    def test_three_roles(self, world):
        inst = make_nginx(world, "server0")
        for path in (nginx_mod.SERVE_PATH, nginx_mod.PROXY_PATH,
                     nginx_mod.RESPOND_PATH):
            assert inst.selector.get_by_name(path)

    def test_serve_is_heavier_than_proxy(self, world):
        inst = make_nginx(world, "server0")
        serve = inst.stage(nginx_mod.SERVE).mean_cost()
        proxy = inst.stage(nginx_mod.PROXY).mean_cost()
        assert serve > 3 * proxy

    def test_per_worker_capacity_matches_fig8(self, world):
        """Fig 8 calibration: a 1-core worker sustains ~8.75 kQPS, so
        four of them saturate near 35 kQPS."""
        inst = make_nginx(world, "server0", processes=1)
        per_request = (
            inst.stage(nginx_mod.EPOLL).mean_cost(batch_size=8) / 8
            + inst.stage(nginx_mod.SERVE).mean_cost()
        )
        capacity = 1.0 / per_request
        assert 8_000 < capacity < 10_500


class TestThriftModel:
    def test_echo_capacity_exceeds_50k(self, world):
        """Fig 12a: the echo server saturates past 50 kQPS."""
        inst = make_thrift(world, "server0")
        per_request = (
            inst.stage(thrift_mod.EPOLL).mean_cost(batch_size=8) / 8
            + inst.stage(thrift_mod.RPC).mean_cost()
            + inst.stage(thrift_mod.SEND).mean_cost()
        )
        assert 1.0 / per_request > 50_000

    def test_logic_path_heavier_than_rpc(self, world):
        inst = make_thrift(world, "server0")
        assert (
            inst.stage(thrift_mod.LOGIC).mean_cost()
            > inst.stage(thrift_mod.RPC).mean_cost()
        )

    def test_custom_tier_name(self, world):
        inst = make_thrift(world, "server0", tier="frontend")
        assert inst.tier == "frontend"
        assert world.instances("frontend") == [inst]


class TestMongoDbModel:
    def test_miss_probability_configurable(self, world):
        import numpy as np

        inst = make_mongodb(world, "server0", miss_probability=0.25)
        rng = np.random.default_rng(0)
        names = [inst.selector.select(rng).name for _ in range(8000)]
        miss_rate = names.count("mongo_miss") / len(names)
        assert miss_rate == pytest.approx(0.25, abs=0.02)

    def test_disk_device_attached(self, world):
        inst = make_mongodb(world, "server0", disk_channels=2)
        assert inst.io_device is not None
        assert inst.io_device.channels == 2

    def test_miss_path_has_io_hit_path_does_not(self, world):
        inst = make_mongodb(world, "server0")
        hit = inst.selector.get_by_name("mongo_hit")
        miss = inst.selector.get_by_name("mongo_miss")
        hit_io = any(inst.stage(s).io is not None for s in hit.stage_ids)
        miss_io = any(inst.stage(s).io is not None for s in miss.stage_ids)
        assert not hit_io
        assert miss_io

    def test_thread_oversubscription(self, world):
        inst = make_mongodb(world, "server0", threads=8, cores=2)
        assert len(inst.cores) == 2
        assert inst.model.concurrency == 8


class TestNetprocModel:
    def test_netproc_capacity_matches_fig8_ceiling(self, world):
        """Fig 8 calibration: 4 interrupt cores cap rx+tx of 612-byte
        responses near 120 kQPS."""
        inst = make_netproc(world, "server0")
        per_message_small = cal.NETPROC_PER_MESSAGE + 128 * cal.NETPROC_PER_BYTE
        per_message_page = cal.NETPROC_PER_MESSAGE + 612 * cal.NETPROC_PER_BYTE
        capacity = 4.0 / (per_message_small + per_message_page)
        assert 110_000 < capacity < 130_000

    def test_registered_as_machine_netproc(self, world):
        inst = make_netproc(world, "server0")
        assert world.deployment.netproc("server0") is inst
