"""Tests for library extensions beyond the paper's evaluation:
kernel-bypass networking (the paper's deferred future work) and the
shipped example spec directory."""

from pathlib import Path

import pytest

from repro.apps import load_balanced, make_netproc, new_world
from repro.config import SimulationSpec
from repro.hardware import Machine
from repro.workload import OpenLoopClient

SPEC_DIR = Path(__file__).resolve().parents[2] / "specs" / "two_tier"


class TestKernelBypass:
    def test_dpdk_netproc_is_cheaper(self):
        world = new_world(seed=0)
        world.cluster.add_machine(Machine("a", 8))
        world.cluster.add_machine(Machine("b", 8))
        irq = make_netproc(world, "a", cores=2)
        dpdk = make_netproc(world, "b", cores=2, kernel_bypass=True)
        irq_cost = irq.stage(0).mean_cost(batch_size=1, mean_bytes=612)
        dpdk_cost = dpdk.stage(0).mean_cost(batch_size=1, mean_bytes=612)
        assert dpdk_cost < irq_cost / 5

    def test_kernel_bypass_removes_lb16_ceiling(self):
        """The Fig 8 sub-linear knee at scale-out 16 is the interrupt
        cores; DPDK lifts it and the webservers become the bound."""
        def throughput(kernel_bypass):
            world = load_balanced(
                scale_out=16, seed=3, kernel_bypass=kernel_bypass
            )
            client = OpenLoopClient(
                world.sim, world.dispatcher, arrivals=132_000, stop_at=0.15
            )
            client.start()
            world.sim.run(until=0.15)
            return client.latencies.throughput(0.05, 0.15)

        assert throughput(True) > throughput(False) * 1.05

    def test_stage_name_reflects_mode(self):
        world = new_world(seed=0)
        world.cluster.add_machine(Machine("a", 4))
        dpdk = make_netproc(world, "a", kernel_bypass=True)
        assert dpdk.stage(0).name == "dpdk_poll"


class TestShippedSpec:
    def test_spec_directory_loads_and_runs(self):
        spec = SimulationSpec.load(SPEC_DIR)
        world, client = spec.build(seed=5)
        assert client is not None
        client.start()
        world.sim.run(until=0.1)
        assert client.requests_completed > 1000

    def test_spec_matches_programmatic_builder(self):
        """The JSON spec mirrors apps.two_tier: same low-load latency
        ballpark at 30k QPS."""
        from repro.apps import two_tier
        from repro.experiments import measure_at_load

        spec = SimulationSpec.load(SPEC_DIR)
        world, client = spec.build(seed=5)
        client.start()
        world.sim.run(until=0.4)
        json_mean = client.latencies.mean(since=0.1)

        point = measure_at_load(two_tier, 30_000, duration=0.4, warmup=0.1)
        assert json_mean == pytest.approx(point.mean, rel=0.25)
