"""Integration tests for the application world builders (low load,
fast)."""

import pytest

from repro.apps import (
    fanout,
    load_balanced,
    single_memcached,
    single_nginx,
    social_network,
    three_tier,
    thrift_echo,
    two_tier,
)
from repro.workload import OpenLoopClient


def drive(world, qps=500, n=50):
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, max_requests=n,
        realism=world.realism,
    )
    client.start()
    world.sim.run()
    return client


class TestTwoTier:
    def test_requests_complete(self):
        world = two_tier()
        client = drive(world)
        assert client.requests_completed == 50
        assert client.latencies.mean() < 2e-3

    def test_both_tiers_process_every_request(self):
        world = two_tier()
        drive(world, n=20)
        nginx = world.instance("nginx")
        memcached = world.instance("memcached")
        # NGINX serves the request and composes the response: 2 jobs.
        assert nginx.jobs_completed == 40
        assert memcached.jobs_completed == 20

    def test_netproc_handles_client_traffic(self):
        world = two_tier()
        drive(world, n=10)
        irq = world.deployment.netproc("server0")
        # rx of the request + tx of the response per request.
        assert irq.jobs_completed == 20

    def test_thread_configs_allocate_cores(self):
        world = two_tier(nginx_processes=4, memcached_threads=1)
        assert len(world.instance("nginx").cores) == 4
        assert len(world.instance("memcached").cores) == 1

    def test_low_load_latency_scale(self):
        world = two_tier()
        client = drive(world, qps=200, n=40)
        # ~40us network + ~135us NGINX + ~16us memcached + irq costs.
        assert 100e-6 < client.latencies.p50() < 1e-3


class TestThreeTier:
    def test_mongo_visited_only_on_misses(self):
        world = three_tier(cache_hit=1.0)
        drive(world, n=30)
        assert world.instance("mongodb").jobs_completed == 0

    def test_write_allocate_on_miss(self):
        world = three_tier(cache_hit=0.0)
        drive(world, n=20)
        # read + write-allocate per request.
        assert world.instance("memcached").jobs_completed == 40
        assert world.instance("mongodb").jobs_completed == 20

    def test_disk_used_on_mongo_misses(self):
        world = three_tier(cache_hit=0.0, mongo_miss=1.0)
        drive(world, n=20)
        disk = world.instance("mongodb").io_device
        assert disk.ops_completed == 20

    def test_miss_latency_exceeds_hit_latency(self):
        hits = drive(three_tier(cache_hit=1.0, seed=3), n=40)
        misses = drive(three_tier(cache_hit=0.0, mongo_miss=1.0, seed=3), n=40)
        assert misses.latencies.mean() > 4 * hits.latencies.mean()

    def test_invalid_cache_hit_rejected(self):
        with pytest.raises(ValueError):
            three_tier(cache_hit=1.5)


class TestLoadBalanced:
    def test_round_robin_spreads_requests(self):
        world = load_balanced(scale_out=4)
        drive(world, n=40)
        counts = [w.jobs_completed for w in world.instances("webserver")]
        assert counts == [10, 10, 10, 10]

    def test_proxy_handles_request_and_response(self):
        world = load_balanced(scale_out=2)
        drive(world, n=10)
        assert world.instance("nginx").jobs_completed == 20

    def test_invalid_scale_out(self):
        with pytest.raises(ValueError):
            load_balanced(scale_out=0)


class TestFanout:
    def test_every_leaf_serves_every_request(self):
        world = fanout(fanout_factor=5)
        drive(world, n=12)
        for i in range(5):
            assert world.instance(f"leaf{i}").jobs_completed == 12

    def test_latency_grows_with_fanout(self):
        small = drive(fanout(fanout_factor=2, seed=5), qps=200, n=60)
        large = drive(fanout(fanout_factor=16, seed=5), qps=200, n=60)
        # Fan-in over more leaves pushes the tail up.
        assert large.latencies.p99() > small.latencies.p99()

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            fanout(fanout_factor=0)


class TestThriftEcho:
    def test_low_load_latency_under_100us(self):
        world = thrift_echo()
        client = drive(world, qps=1000, n=200)
        # Paper SSIV-C: low-load latency does not exceed 100us.
        assert client.latencies.p50() < 100e-6

    def test_single_thread_default(self):
        world = thrift_echo()
        assert len(world.instance("thrift").cores) == 1


class TestSocialNetwork:
    def test_every_service_participates(self):
        world = social_network()
        drive(world, qps=300, n=15)
        for tier in (
            "frontend",
            "user_service", "post_service", "media_service",
            "user_memcached", "post_memcached", "media_memcached",
            "user_mongodb", "post_mongodb", "media_mongodb",
        ):
            assert world.instance(tier).jobs_completed > 0, tier

    def test_frontend_runs_three_times_per_request(self):
        world = social_network()
        drive(world, qps=300, n=10)
        # entry + join + final respond.
        assert world.instance("frontend").jobs_completed == 30

    def test_media_branch_strictly_after_user_post_join(self):
        world = social_network()
        client = drive(world, qps=100, n=10)
        assert client.requests_completed == 10


class TestSingleTierWorlds:
    def test_single_nginx(self):
        client = drive(single_nginx(), qps=500, n=30)
        assert client.requests_completed == 30

    def test_single_memcached(self):
        client = drive(single_memcached(), qps=2000, n=50)
        assert client.requests_completed == 50
        assert client.latencies.p50() < 150e-6


class TestRealismBuilds:
    def test_worlds_build_with_realism(self):
        from repro.testbed import RealismConfig

        realism = RealismConfig()
        client = drive(two_tier(realism=realism), n=20)
        assert client.requests_completed == 20

    def test_realism_adds_noise(self):
        base = drive(two_tier(seed=11), qps=500, n=200)
        from repro.testbed import RealismConfig

        noisy = drive(
            two_tier(seed=11, realism=RealismConfig(jitter_cv=0.5)),
            qps=500, n=200,
        )
        # Same workload, higher dispersion with realism on.
        base_spread = base.latencies.p99() / base.latencies.p50()
        noisy_spread = noisy.latencies.p99() / noisy.latencies.p50()
        assert noisy_spread > base_spread
