"""Tests for the synthetic microservice-graph generator."""

import pytest

from repro.apps import GraphShape, synthetic_graph
from repro.errors import ConfigError
from repro.workload import OpenLoopClient


def drive(world, n=10, qps=200):
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, max_requests=n
    )
    client.start()
    world.sim.run()
    return client


class TestGraphShape:
    def test_total_services(self):
        shape = GraphShape(layers=3, width=4)
        assert shape.total_services == 13

    def test_validation(self):
        with pytest.raises(ConfigError):
            GraphShape(layers=0).validate()
        with pytest.raises(ConfigError):
            GraphShape(width=2, fanout=3).validate()
        with pytest.raises(ConfigError):
            GraphShape(min_service=0).validate()
        with pytest.raises(ConfigError):
            GraphShape(machines=0).validate()


class TestSyntheticGraph:
    def test_builds_and_completes_requests(self):
        world = synthetic_graph(GraphShape(layers=3, width=3, fanout=2), seed=4)
        client = drive(world, n=10)
        assert client.requests_completed == 10

    def test_all_layers_participate(self):
        world = synthetic_graph(GraphShape(layers=2, width=2, fanout=2), seed=4)
        drive(world, n=5)
        # fanout=width=2: every service of every layer is called.
        for tier in world.deployment.services:
            if tier.startswith("svc_"):
                assert world.instance(tier).jobs_completed > 0, tier

    def test_deterministic_for_seed(self):
        def run(seed):
            world = synthetic_graph(GraphShape(layers=2, width=3), seed=seed)
            client = drive(world, n=20)
            return client.latencies.samples()[1].tolist()

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_depth_increases_latency(self):
        shallow = drive(
            synthetic_graph(GraphShape(layers=1, width=2, fanout=1), seed=3),
            n=30,
        )
        deep = drive(
            synthetic_graph(GraphShape(layers=5, width=2, fanout=1), seed=3),
            n=30,
        )
        assert deep.latencies.mean() > shallow.latencies.mean()

    def test_frontend_joins_after_all_leaves(self):
        world = synthetic_graph(GraphShape(layers=2, width=3, fanout=2), seed=4)
        drive(world, n=4)
        frontend = world.instance("frontend")
        # entry + join per request.
        assert frontend.jobs_completed == 8

    def test_labels_record_shape(self):
        world = synthetic_graph(GraphShape(layers=2, width=2), seed=0)
        assert "layers=2" in world.labels["config"]


class TestReplication:
    def test_replicate_reports_convergence(self):
        from repro.apps import thrift_echo
        from repro.experiments import replicate_at_load

        result = replicate_at_load(
            thrift_echo, 10_000, duration=0.2, warmup=0.05,
            min_replications=3, max_replications=6, tolerance=0.2,
        )
        assert result.replications >= 3
        assert result.p99_mean > 0
        assert result.p99_ci95 >= 0
        assert len(result.points) == result.replications

    def test_replications_are_decorrelated(self):
        from repro.apps import thrift_echo
        from repro.experiments import replicate_at_load

        result = replicate_at_load(
            thrift_echo, 10_000, duration=0.15, warmup=0.05,
            min_replications=3, max_replications=3, tolerance=0.001,
        )
        p99s = [p.p99 for p in result.points]
        assert len(set(p99s)) == len(p99s)  # all different seeds

    def test_validation(self):
        from repro.apps import thrift_echo
        from repro.errors import ReproError
        from repro.experiments import replicate_at_load

        with pytest.raises(ReproError):
            replicate_at_load(thrift_echo, 100, min_replications=1)
        with pytest.raises(ReproError):
            replicate_at_load(
                thrift_echo, 100, min_replications=4, max_replications=2
            )
        with pytest.raises(ReproError):
            replicate_at_load(thrift_echo, 100, tolerance=2.0)


class TestGraphSeedSeparation:
    def test_same_graph_different_runs(self):
        from repro.apps import GraphShape, synthetic_graph
        from repro.workload import OpenLoopClient

        def run(seed):
            world = synthetic_graph(
                GraphShape(layers=2, width=3), seed=seed, graph_seed=7
            )
            client = OpenLoopClient(
                world.sim, world.dispatcher, arrivals=300, max_requests=20
            )
            client.start()
            world.sim.run()
            return world, client

        world_a, client_a = run(1)
        world_b, client_b = run(2)
        # Same topology (same tier names)...
        assert world_a.deployment.services == world_b.deployment.services
        # ...but independent stochastic runs.
        lat_a = client_a.latencies.samples()[1].tolist()
        lat_b = client_b.latencies.samples()[1].tolist()
        assert lat_a != lat_b
