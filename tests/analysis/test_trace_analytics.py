"""Aggregate trace analytics: exactness and reconciliation.

The two load-bearing guarantees (both acceptance criteria of the
observability PR):

* tail attribution **sums to the measured end-to-end percentile** to
  float precision, on a three-tier run with retries and hedging, across
  seeds;
* the RED dependency graph's per-edge counts **match the dispatcher's
  ``edge_requests_total`` counters exactly** at sample rate 1.0.
"""

import numpy as np
import pytest

from repro.analysis import (
    GAPS,
    analyze_traces,
    exemplars,
    load_traces,
    node_breakdowns,
    red_graph,
    tail_attribution,
)
from repro.analysis.trace_analytics import _quantile_blend
from repro.apps import three_tier
from repro.errors import ReproError
from repro.resilience import HedgePolicy, ResiliencePolicy, RetryPolicy
from repro.telemetry import MetricsRegistry, write_otlp
from repro.workload import OpenLoopClient


def _traced_run(seed, qps=2500, duration=0.4):
    """A three-tier run with timeouts, retries, and hedging, traced at
    sample rate 1.0 with the metrics registry attached."""
    world = three_tier(seed=seed)
    world.dispatcher.trace = True
    registry = MetricsRegistry()
    registry.instrument_world(world)
    policy = ResiliencePolicy(
        timeout=0.02,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
        hedge=HedgePolicy(delay=0.004, max_hedges=1),
    )
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, stop_at=duration,
        resilience=policy,
    )
    client.start()
    world.sim.run()
    return world, client, registry


@pytest.fixture(scope="module")
def traced_run():
    return _traced_run(seed=3)


class TestQuantileBlend:
    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.exponential(1.0, size=137))
        for q in (0.0, 12.5, 50.0, 95.0, 99.0, 100.0):
            blended = sum(
                w * values[i] for i, w in _quantile_blend(len(values), q)
            )
            assert blended == pytest.approx(
                np.percentile(values, q), rel=0, abs=1e-15
            )

    def test_exact_rank_uses_one_trace(self):
        assert _quantile_blend(5, 50.0) == [(2, 1.0)]
        assert _quantile_blend(5, 100.0) == [(4, 1.0)]
        assert _quantile_blend(1, 99.0) == [(0, 1.0)]

    def test_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            _quantile_blend(10, 101.0)


class TestTailAttribution:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_contributions_sum_to_e2e_percentile(self, seed):
        # The headline acceptance criterion: on a seeded 3-tier run
        # with retries + hedging, the per-node p50/p95/p99 contributions
        # sum to the measured end-to-end percentile — not approximately,
        # to float rounding.
        world, client, _ = _traced_run(seed=seed)
        traces = world.dispatcher.tracer.traces
        ok_latencies = sorted(
            t.completed_at - t.created_at for t in traces
            if t.outcome == "ok" and t.completed_at is not None
        )
        assert len(ok_latencies) > 100
        tail = tail_attribution(traces, percentiles=(50.0, 95.0, 99.0))
        for q, attribution in tail.items():
            measured = np.percentile(ok_latencies, q)
            total = sum(attribution.contributions.values())
            assert total == pytest.approx(measured, rel=0, abs=1e-12)
            assert attribution.latency == pytest.approx(
                measured, rel=0, abs=1e-12
            )

    def test_gaps_pseudo_node_present_and_ranked(self, traced_run):
        world, _, _ = traced_run
        tail = tail_attribution(world.dispatcher.tracer.traces)
        attribution = tail[99.0]
        assert GAPS in attribution.contributions
        ranked = attribution.ranked()
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        # The blended order statistics are named so the exemplar traces
        # can be pulled up in the Perfetto export.
        assert 1 <= len(attribution.trace_ids) <= 2

    def test_rejects_trace_set_with_no_ok(self):
        with pytest.raises(ReproError):
            tail_attribution([])


class TestRedGraph:
    def test_edge_counts_match_dispatcher_counters_exactly(self, traced_run):
        # Second acceptance criterion: span-per-edge-traversal counts
        # reconcile with edge_requests_total at sample rate 1.0 — the
        # traces and the metrics are two views of the same events.
        world, _, registry = traced_run
        edges = red_graph(world.dispatcher.tracer.traces)
        counters = registry.collect()["counters"]
        edge_counters = {
            key: value for key, value in counters.items()
            if key.startswith("edge_requests_total")
        }
        assert edge_counters, "dispatcher recorded no edge counters"
        by_pair = {(e.upstream, e.service): e.count for e in edges}
        for key, value in edge_counters.items():
            labels = dict(
                part.split("=") for part in
                key[key.index("{") + 1:key.index("}")].replace('"', "").split(",")
            )
            pair = (labels["upstream"], labels["service"])
            assert by_pair.pop(pair) == value
        assert not by_pair, f"edges with no matching counter: {by_pair}"

    def test_amplification_reflects_retries_and_hedges(self, traced_run):
        world, _, _ = traced_run
        edges = red_graph(world.dispatcher.tracer.traces)
        # Retries/hedges launched extra attempts somewhere; at least
        # one edge must show amplification above 1.0, and none below.
        assert all(e.amplification >= 1.0 for e in edges)
        assert any(e.amplification > 1.0 for e in edges)
        for edge in edges:
            assert edge.rate > 0
            assert 0.0 <= edge.error_rate <= 1.0


class TestNodeBreakdowns:
    def test_parts_sum_to_duration_quantile(self, traced_run):
        world, _, _ = traced_run
        nodes = node_breakdowns(world.dispatcher.tracer.traces)
        assert nodes
        for node in nodes:
            for duration, network, queueing, service in (
                node.percentiles.values()
            ):
                assert network + queueing + service == pytest.approx(
                    duration, rel=0, abs=1e-12
                )

    def test_cancelled_traversals_counted(self, traced_run):
        world, _, _ = traced_run
        nodes = node_breakdowns(world.dispatcher.tracer.traces)
        # Timeouts + losing hedges cancelled some attempt somewhere.
        assert sum(n.cancelled for n in nodes) > 0


class TestExemplars:
    def test_slowest_first_per_node(self, traced_run):
        world, _, _ = traced_run
        by_node = exemplars(world.dispatcher.tracer.traces, top=3)
        assert by_node
        for entries in by_node.values():
            assert 1 <= len(entries) <= 3
            latencies = [e.latency for e in entries]
            assert latencies == sorted(latencies, reverse=True)
            assert all(e.outcome == "ok" for e in entries)

    def test_rejects_nonpositive_top(self, traced_run):
        world, _, _ = traced_run
        with pytest.raises(ReproError):
            exemplars(world.dispatcher.tracer.traces, top=0)


class TestLoadTraces:
    def test_otlp_roundtrip_matches_in_memory_analytics(
        self, traced_run, tmp_path
    ):
        world, _, _ = traced_run
        traces = world.dispatcher.tracer.traces
        # Split the corpus across nested files, the way a sweep's
        # per-point exports land on disk.
        half = len(traces) // 2
        (tmp_path / "sub").mkdir()
        write_otlp(tmp_path / "a.otlp.json", traces[:half])
        write_otlp(tmp_path / "sub" / "b.otlp.json", traces[half:])
        loaded = load_traces(tmp_path)
        assert len(loaded) == len(traces)
        direct = analyze_traces(traces)
        via_files = analyze_traces(loaded)
        assert via_files.traces == direct.traces
        assert via_files.ok_traces == direct.ok_traces
        for q, attribution in direct.tail.items():
            assert via_files.tail[q].latency == pytest.approx(
                attribution.latency, rel=0, abs=1e-12
            )
            assert via_files.tail[q].contributions == pytest.approx(
                attribution.contributions
            )
        assert [
            (e.upstream, e.service, e.count, e.errors)
            for e in via_files.edges
        ] == [
            (e.upstream, e.service, e.count, e.errors)
            for e in direct.edges
        ]

    def test_missing_dir_and_empty_dir_raise(self, tmp_path):
        with pytest.raises(ReproError):
            load_traces(tmp_path / "nope")
        with pytest.raises(ReproError):
            load_traces(tmp_path)


class TestAnalyzeTraces:
    def test_bundle_is_complete(self, traced_run):
        world, _, _ = traced_run
        analytics = analyze_traces(
            world.dispatcher.tracer.traces, percentiles=(50.0, 99.0), top=2
        )
        assert analytics.traces >= analytics.ok_traces > 0
        assert analytics.duration > 0
        assert set(analytics.tail) == {50.0, 99.0}
        assert analytics.edges and analytics.nodes and analytics.exemplars
        assert all(len(v) <= 2 for v in analytics.exemplars.values())

    def test_rejects_empty_corpus(self):
        with pytest.raises(ReproError):
            analyze_traces([])
