"""Tests for the closed-form queueing module — including cross-checks
of the simulator against theory (the strongest correctness evidence the
library offers)."""

import numpy as np
import pytest

from repro.analysis import (
    erlang_c,
    fanout_percentile_amplification,
    mg1_mean_sojourn,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
    required_leaf_quantile,
)
from repro.bighouse import simulate_ggk_instance
from repro.distributions import Deterministic, Exponential
from repro.errors import ReproError


class TestClosedForms:
    def test_mm1_mean(self):
        # lambda=500, mu=1000 -> E[T] = 1/500 = 2ms.
        assert mm1_mean_sojourn(500, 1000) == pytest.approx(2e-3)

    def test_mm1_percentile_median(self):
        mean = mm1_mean_sojourn(500, 1000)
        median = mm1_sojourn_percentile(500, 1000, 50)
        assert median == pytest.approx(mean * np.log(2))

    def test_mm1_instability_rejected(self):
        with pytest.raises(ReproError):
            mm1_mean_sojourn(1000, 1000)

    def test_erlang_c_single_server_equals_rho(self):
        # For c=1, P(wait) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_erlang_c_known_value(self):
        # Classic table value: c=2, a=1 -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_sojourn(500, 1000, 1) == pytest.approx(
            mm1_mean_sojourn(500, 1000)
        )

    def test_mg1_deterministic_halves_waiting(self):
        # P-K: E[W] for M/D/1 is half of M/M/1's.
        md1 = mg1_mean_sojourn(500, 1e-3, service_scv=0.0) - 1e-3
        mm1 = mg1_mean_sojourn(500, 1e-3, service_scv=1.0) - 1e-3
        assert md1 == pytest.approx(mm1 / 2.0)

    def test_fanout_amplification(self):
        # Dean & Barroso: 99th-percentile leaves, fanout 100 -> only
        # ~37% of requests see all leaves fast.
        p = fanout_percentile_amplification(100, 0.99)
        assert p == pytest.approx(0.366, abs=0.005)

    def test_required_leaf_quantile_inverts(self):
        q = required_leaf_quantile(100, 0.99)
        assert fanout_percentile_amplification(100, q) == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ReproError):
            erlang_c(0, 1.0)
        with pytest.raises(ReproError):
            fanout_percentile_amplification(0, 0.5)
        with pytest.raises(ReproError):
            required_leaf_quantile(4, 1.5)
        with pytest.raises(ReproError):
            mm1_sojourn_percentile(1, 2, 100)


class TestSimulatorAgreesWithTheory:
    """G/G/k kernel vs closed forms (the full-stack M/M/1 check lives
    in tests/integration)."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mm1_kernel(self, rho):
        rng = np.random.default_rng(0)
        mu = 1000.0
        lam = rho * mu
        latencies = simulate_ggk_instance(
            Exponential(1.0 / lam), Exponential(1.0 / mu),
            servers=1, num_requests=300_000, rng=rng,
        )
        assert latencies.mean() == pytest.approx(
            mm1_mean_sojourn(lam, mu), rel=0.06
        )

    def test_mmc_kernel(self):
        rng = np.random.default_rng(1)
        lam, mu, servers = 2500.0, 1000.0, 4
        latencies = simulate_ggk_instance(
            Exponential(1.0 / lam), Exponential(1.0 / mu),
            servers=servers, num_requests=300_000, rng=rng,
        )
        assert latencies.mean() == pytest.approx(
            mmc_mean_sojourn(lam, mu, servers), rel=0.06
        )

    def test_md1_kernel(self):
        rng = np.random.default_rng(2)
        lam, service = 600.0, 1e-3
        latencies = simulate_ggk_instance(
            Exponential(1.0 / lam), Deterministic(service),
            servers=1, num_requests=300_000, rng=rng,
        )
        assert latencies.mean() == pytest.approx(
            mg1_mean_sojourn(lam, service, 0.0), rel=0.06
        )
