"""Tests for backpressure onset detection."""

import pytest

from repro.analysis import cascade_report, culprit, detect_onsets
from repro.apps import two_tier
from repro.errors import ReproError
from repro.telemetry import ServiceMonitor
from repro.workload import OpenLoopClient, StepPattern


def overloaded_two_tier(qps_late=90_000, duration=0.4):
    """Calm start, then an overload that saturates NGINX (the 2-tier
    bottleneck) so its queues must light up first."""
    world = two_tier(seed=21)
    instances = [world.instance("nginx"), world.instance("memcached")]
    monitor = ServiceMonitor(
        world.sim, instances, interval=0.01, stop_at=duration
    )
    pattern = StepPattern([(0.0, 2_000), (0.15, qps_late)])
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=pattern, stop_at=duration
    )
    monitor.start()
    client.start()
    world.sim.run(until=duration)
    return monitor


class TestDetection:
    def test_overload_names_the_bottleneck_tier(self):
        monitor = overloaded_two_tier()
        assert culprit(monitor) == "nginx0"

    def test_onset_happens_after_the_load_step(self):
        monitor = overloaded_two_tier()
        onsets = detect_onsets(monitor)
        assert onsets
        assert onsets[0].onset_time >= 0.15
        assert onsets[0].peak_depth > onsets[0].baseline_depth * 4

    def test_calm_system_reports_nothing(self):
        world = two_tier(seed=21)
        monitor = ServiceMonitor(
            world.sim,
            [world.instance("nginx"), world.instance("memcached")],
            interval=0.01, stop_at=0.3,
        )
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=5_000, stop_at=0.3
        )
        monitor.start()
        client.start()
        world.sim.run(until=0.3)
        assert culprit(monitor) is None
        assert detect_onsets(monitor) == []
        assert cascade_report(monitor) == {}

    def test_cascade_report_maps_instances_to_times(self):
        monitor = overloaded_two_tier()
        report = cascade_report(monitor)
        assert "nginx0" in report
        assert report["nginx0"] >= 0.15

    def test_validation(self):
        monitor = overloaded_two_tier(duration=0.2)
        with pytest.raises(ReproError):
            detect_onsets(monitor, threshold_factor=1.0)
        with pytest.raises(ReproError):
            detect_onsets(monitor, baseline_fraction=0.0)
