"""Timeline rendering and shard-runtime reconciliation."""

import pytest

from repro.analysis import (
    format_timeline_report,
    load_timelines,
    reconcile_shard_runtime,
)
from repro.analysis.timeline import _bin_edges, _bin_means
from repro.errors import ReproError
from repro.telemetry import timeline_payload, write_timeline


def _series(samples):
    return {
        "times": [t for t, _ in samples],
        "values": [v for _, v in samples],
    }


def _payload(**kwargs):
    series = {
        "util/web": _series([(0.1, 0.5), (0.2, 0.7), (0.3, 0.9)]),
        "depth/web": _series([(0.1, 1.0), (0.2, 3.0), (0.3, 5.0)]),
        "client/qps": _series([(0.1, 100.0), (0.2, 200.0), (0.3, 300.0)]),
        "client/p99": _series([(0.1, 0.004), (0.3, 0.008)]),
    }
    return timeline_payload(
        series, interval=0.1,
        meta={"qps": 2000.0, "duration": 0.3, "warmup": 0.05, "shards": 1},
        **kwargs,
    )


RUNTIME = {
    "rounds": 10,
    "messages_exchanged": 7,
    "stalls": 0,
    "wall_s": 0.5,
    "mode": "inline",
    "straggler_rounds": {"0": 6, "1": 4},
    "per_shard": {
        "0": {"events": 100, "busy_wall_s": 0.3, "blocked_wall_s": 0.1,
              "idle_rounds": 1, "window_efficiency": 200.0},
        "1": {"events": 40, "busy_wall_s": 0.1, "blocked_wall_s": 0.3,
              "idle_rounds": 5, "window_efficiency": 80.0},
    },
    "mailbox_volume": {"0->1": 4, "1->0": 3},
}


class TestLoadTimelines:
    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_timelines(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no timeline artifacts"):
            load_timelines(tmp_path)

    def test_finds_run_and_sweep_names_recursively(self, tmp_path):
        write_timeline(tmp_path / "timeseries.json", _payload())
        sub = tmp_path / "fig5"
        sub.mkdir()
        write_timeline(sub / "qps2000.timeseries.json", _payload())
        (tmp_path / "trace.otlp.json").write_text("{}")  # must be ignored
        loaded = load_timelines(tmp_path)
        assert [p.name for p, _ in loaded] == [
            "qps2000.timeseries.json", "timeseries.json",
        ]

    def test_foreign_json_with_matching_name_rejected(self, tmp_path):
        (tmp_path / "timeseries.json").write_text('{"schema": "other"}')
        with pytest.raises(ReproError, match="schema"):
            load_timelines(tmp_path)


class TestBinning:
    def test_edges_span_all_series(self):
        edges = _bin_edges(
            {"a": _series([(0.0, 1.0)]), "b": _series([(2.0, 1.0)])},
            bins=4,
        )
        assert edges[0] == 0.0 and edges[-1] == 2.0
        assert len(edges) == 5

    def test_single_instant_gets_nonzero_width(self):
        edges = _bin_edges({"a": _series([(1.0, 5.0)])}, bins=2)
        assert edges[0] == 1.0 and edges[-1] == 2.0

    def test_no_samples_no_edges(self):
        assert _bin_edges({}, bins=3) == []

    def test_means_keep_last_right_inclusive_sample(self):
        data = _series([(0.0, 2.0), (0.5, 4.0), (1.0, 6.0)])
        means = _bin_means(data, [0.0, 0.5, 1.0])
        assert means == [2.0, 5.0]

    def test_empty_bins_are_none(self):
        data = _series([(0.0, 1.0), (3.0, 2.0)])
        means = _bin_means(data, [0.0, 1.0, 2.0, 3.0])
        assert means == [1.0, None, 2.0]


class TestReconcile:
    def test_consistent_runtime_passes(self):
        reconcile_shard_runtime(RUNTIME)

    def test_straggler_mismatch_raises(self):
        cooked = dict(RUNTIME, straggler_rounds={"0": 6, "1": 3})
        with pytest.raises(ReproError, match="straggler"):
            reconcile_shard_runtime(cooked)

    def test_mailbox_mismatch_raises(self):
        cooked = dict(RUNTIME, mailbox_volume={"0->1": 4, "1->0": 4})
        with pytest.raises(ReproError, match="mailbox"):
            reconcile_shard_runtime(cooked)


class TestFormatReport:
    def test_report_sections_and_identity(self):
        report = format_timeline_report(_payload(), name="demo", bins=3)
        assert "timeline demo (qps=2000" in report
        assert "per-tier utilisation over sim-time" in report
        assert "per-tier queue depth" in report
        assert "client over sim-time" in report
        # p99 renders in milliseconds.
        assert "p99 ms" in report
        assert "web" in report

    def test_shard_sections_render_and_reconcile(self):
        report = format_timeline_report(
            _payload(shard_runtime=RUNTIME), bins=2
        )
        assert "shard runtime (inline): 10 rounds, 7 messages" in report
        assert "shard imbalance" in report
        assert "critical shards" in report
        # Shard 0 bounded 6/10 rounds and must lead the ranking.
        assert "shard 0 (6/10 rounds)" in report
        assert "mailbox volume" in report

    def test_inconsistent_runtime_refuses_to_render(self):
        cooked = dict(RUNTIME, rounds=11)
        with pytest.raises(ReproError, match="straggler"):
            format_timeline_report(_payload(shard_runtime=cooked))

    def test_bad_bins_rejected(self):
        with pytest.raises(ReproError, match="bins"):
            format_timeline_report(_payload(), bins=0)
