"""Tests for critical-path analysis over traced requests."""

import pytest

from repro.analysis import analyze, critical_path, slowest_nodes, spans_of
from repro.errors import ReproError
from repro.service import Request
from repro.telemetry import SPAN_CANCELLED, Trace


def traced_request(spans):
    """Build a request carrying a synthetic trace."""
    req = Request(0.0)
    req.completed_at = max(leave for *_rest, leave in spans)
    req.metadata["trace"] = spans
    return req


class TestSpans:
    def test_spans_extracted(self):
        req = traced_request([("a", "a0", 0.0, 1.0), ("b", "b0", 1.0, 3.0)])
        spans = spans_of(req)
        assert [s.node for s in spans] == ["a", "b"]
        assert spans[1].duration == pytest.approx(2.0)

    def test_untraced_request_rejected(self):
        with pytest.raises(ReproError):
            spans_of(Request(0.0))


class TestCriticalPath:
    def test_linear_chain_is_whole_path(self):
        req = traced_request(
            [("a", "a0", 0.0, 1.0), ("b", "b0", 1.0, 2.0), ("c", "c0", 2.0, 4.0)]
        )
        assert [s.node for s in critical_path(req)] == ["a", "b", "c"]

    def test_fanout_picks_slowest_branch(self):
        # proxy -> {fast, slow} -> join: the slow branch defines latency.
        req = traced_request([
            ("proxy", "p0", 0.0, 0.5),
            ("fast", "f0", 0.5, 1.0),
            ("slow", "s0", 0.5, 3.0),
            ("join", "p0", 3.0, 3.5),
        ])
        path = [s.node for s in critical_path(req)]
        assert path == ["proxy", "slow", "join"]
        assert "fast" not in path

    def test_empty_trace_rejected(self):
        req = Request(0.0)
        req.metadata["trace"] = []
        with pytest.raises(ReproError):
            critical_path(req)


def span_request(visits, created_at=0.0):
    """Build a request carrying a Span-model trace.

    *visits* are (node, attempt, enter, leave[, status]) tuples.
    """
    req = Request(created_at)
    trace = Trace(req.request_id, created_at=created_at)
    for node, attempt, enter, leave, *rest in visits:
        span = trace.start_span(node, f"{node}0", node, attempt, enter)
        span.finish(leave, status=rest[0] if rest else "ok",
                    breakdown=False)
    req.completed_at = max(leave for _, _, _, leave, *_ in visits)
    trace.finish(req.completed_at, "ok")
    req.metadata["trace"] = trace
    return req


class TestSpanModelCriticalPath:
    def test_overlapping_fanout_branches(self):
        # Branch spans overlap in time: fast (0.5-2.1) is still running
        # when slow (0.6-3.0) starts, and overlaps the proxy span too.
        # The walk must pick the branch the join actually waited for,
        # not merely the last-started one.
        req = span_request([
            ("proxy", 0, 0.0, 0.7),
            ("fast", 0, 0.5, 2.1),
            ("slow", 0, 0.6, 3.0),
            ("join", 0, 3.0, 3.5),
        ])
        path = [s.node for s in critical_path(req)]
        assert path == ["slow", "join"]
        # 'fast' overlaps 'slow' entirely within the wait, never on it.
        assert "fast" not in path

    def test_traced_retry_failed_attempt_joins_path(self):
        # Attempt 0 timed out (cancelled at 1.0); the retry ran 1.2-2.0.
        # The cancelled span is genuinely spent latency: it belongs on
        # the chain.
        req = span_request([
            ("web", 0, 0.0, 1.0, SPAN_CANCELLED),
            ("web", 1, 1.2, 2.0),
        ])
        path = critical_path(req)
        assert [(s.node, s.attempt) for s in path] == [
            ("web", 0), ("web", 1),
        ]

    def test_hedge_loser_never_anchors_the_path(self):
        # The losing hedge attempt is cancelled at resolution time —
        # *after* the winner's span closed. It must neither anchor the
        # backwards walk nor join the chain.
        req = span_request([
            ("web", 0, 0.0, 2.05, SPAN_CANCELLED),  # loser, dies last
            ("web", 1, 0.5, 2.0),                   # winner
        ])
        path = critical_path(req)
        assert [(s.node, s.attempt) for s in path] == [("web", 1)]

    def test_analyze_covers_cancelled_path_nodes(self):
        req = span_request([
            ("web", 0, 0.0, 1.0, SPAN_CANCELLED),
            ("web", 1, 1.2, 2.0),
        ])
        contributions = analyze([req])
        assert contributions["web"].visits == 2
        assert contributions["web"].critical_fraction == 1.0


class TestAggregation:
    def make_requests(self):
        # Two requests: 'slow' on the path both times, 'fast' never.
        return [
            traced_request([
                ("proxy", "p0", 0.0, 0.5),
                ("fast", "f0", 0.5, 1.0),
                ("slow", "s0", 0.5, 3.0),
                ("join", "p0", 3.0, 3.5),
            ]),
            traced_request([
                ("proxy", "p0", 0.0, 0.4),
                ("fast", "f0", 0.4, 0.8),
                ("slow", "s0", 0.4, 2.0),
                ("join", "p0", 2.0, 2.2),
            ]),
        ]

    def test_analyze_contributions(self):
        contributions = analyze(self.make_requests())
        assert contributions["slow"].critical_fraction == 1.0
        assert contributions["fast"].critical_fraction == 0.0
        assert contributions["slow"].visits == 2
        assert contributions["slow"].mean_span == pytest.approx(2.05)

    def test_slowest_nodes_ranking(self):
        ranked = slowest_nodes(self.make_requests(), top=2)
        assert ranked[0][0] == "slow"

    def test_analyze_empty_rejected(self):
        with pytest.raises(ReproError):
            analyze([])


class TestEndToEndWithDispatcher:
    def test_real_traced_run_blames_the_slow_tier(self):
        from repro.distributions import Deterministic
        from repro.engine import Simulator
        from repro.hardware import NetworkFabric
        from repro.topology import Dispatcher, PathNode, PathTree

        from ..topology.conftest import build_instance, build_world

        sim = Simulator(seed=0)
        network = NetworkFabric(
            propagation=Deterministic(1e-6), loopback=Deterministic(1e-6)
        )
        cluster, deployment, _ = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "fast0", "node0",
                           service_time=1e-4, tier="fast")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "slow0", "node1",
                           service_time=5e-3, tier="slow")
        )
        dispatcher = Dispatcher(sim, deployment, network, trace=True)
        tree = PathTree()
        tree.add_node(PathNode("root", "fast"))
        tree.add_node(PathNode("fastleaf", "fast", same_instance_as="root"))
        tree.add_node(PathNode("slowleaf", "slow"))
        tree.add_edge("root", "fastleaf")
        tree.add_edge("root", "slowleaf")
        tree.add_node(PathNode("join", "fast", same_instance_as="root"))
        tree.add_edge("fastleaf", "join")
        tree.add_edge("slowleaf", "join")
        dispatcher.add_tree(tree)

        done = []
        for i in range(20):
            req = Request(created_at=i * 1e-3)
            sim.schedule_at(req.created_at, dispatcher.submit, req, done.append)
        sim.run()
        ranked = slowest_nodes(done, top=1)
        assert ranked[0][0] == "slowleaf"
