"""Tests for machines, allocation, and clusters."""

import numpy as np
import pytest

from repro.errors import ResourceError
from repro.hardware import Cluster, DvfsLadder, GHZ, Machine, NetworkFabric
from repro.distributions import Deterministic


class TestMachineAllocation:
    def test_dedicated_allocation(self):
        m = Machine("node0", 4)
        nginx = m.allocate("nginx", 2)
        mc = m.allocate("memcached", 1)
        assert len(nginx) == 2 and len(mc) == 1
        assert m.unallocated_cores == 1
        ids = {c.core_id for c in nginx.cores} | {c.core_id for c in mc.cores}
        assert len(ids) == 3  # no core shared

    def test_overcommit_rejected(self):
        m = Machine("node0", 2)
        m.allocate("a", 2)
        with pytest.raises(ResourceError):
            m.allocate("b", 1)

    def test_duplicate_owner_rejected(self):
        m = Machine("node0", 4)
        m.allocate("a", 1)
        with pytest.raises(ResourceError):
            m.allocate("a", 1)

    def test_allocation_lookup(self):
        m = Machine("node0", 4)
        cores = m.allocate("a", 2)
        assert m.allocation("a") is cores
        with pytest.raises(ResourceError):
            m.allocation("nope")

    def test_table2_machine(self):
        m = Machine.table2("node0")
        assert m.num_cores == 40
        assert m.ladder.max == pytest.approx(2.6 * GHZ)

    def test_zero_core_machine_rejected(self):
        with pytest.raises(ResourceError):
            Machine("bad", 0)

    def test_machine_set_frequency(self):
        m = Machine("node0", 2, DvfsLadder([1.2 * GHZ, 2.6 * GHZ]))
        assert m.set_frequency(1.2 * GHZ) == 1.2 * GHZ
        assert all(c.frequency == 1.2 * GHZ for c in m.cores)


class TestCluster:
    def test_homogeneous_builder(self):
        cluster = Cluster.homogeneous(3, 8)
        assert len(cluster) == 3
        assert cluster.total_cores == 24
        assert cluster.machine_names == ["node0", "node1", "node2"]

    def test_duplicate_machine_rejected(self):
        cluster = Cluster()
        cluster.add_machine(Machine("a", 1))
        with pytest.raises(ResourceError):
            cluster.add_machine(Machine("a", 2))

    def test_unknown_machine_lookup(self):
        with pytest.raises(ResourceError):
            Cluster().machine("ghost")

    def test_contains_and_iter(self):
        cluster = Cluster.homogeneous(2, 1)
        assert "node0" in cluster
        assert sorted(m.name for m in cluster) == ["node0", "node1"]

    def test_empty_cluster_count_rejected(self):
        with pytest.raises(ResourceError):
            Cluster.homogeneous(0, 4)


class TestNetworkFabric:
    def test_same_machine_uses_loopback(self):
        fabric = NetworkFabric(
            propagation=Deterministic(100e-6), loopback=Deterministic(1e-6)
        )
        rng = np.random.default_rng(0)
        assert fabric.delay("a", "a", 1000, rng) == pytest.approx(1e-6)

    def test_cross_machine_adds_serialisation(self):
        fabric = NetworkFabric(
            propagation=Deterministic(100e-6),
            loopback=Deterministic(1e-6),
            bandwidth_bytes_per_s=1e6,
        )
        rng = np.random.default_rng(0)
        # 1000 bytes at 1 MB/s = 1 ms on the wire.
        assert fabric.delay("a", "b", 1000, rng) == pytest.approx(100e-6 + 1e-3)

    def test_negative_size_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ResourceError):
            NetworkFabric().delay("a", "b", -1, rng)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ResourceError):
            NetworkFabric(bandwidth_bytes_per_s=0)
