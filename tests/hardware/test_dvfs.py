"""Tests for the DVFS ladder."""

import pytest

from repro.errors import ResourceError
from repro.hardware import GHZ, DvfsLadder


class TestConstruction:
    def test_xeon_ladder_matches_table2(self):
        ladder = DvfsLadder.xeon_e5_2660_v3()
        assert ladder.min == pytest.approx(1.2 * GHZ)
        assert ladder.max == pytest.approx(2.6 * GHZ)
        assert len(ladder) == 15

    def test_duplicates_collapse(self):
        ladder = DvfsLadder([1e9, 1e9, 2e9])
        assert len(ladder) == 2

    def test_empty_rejected(self):
        with pytest.raises(ResourceError):
            DvfsLadder([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ResourceError):
            DvfsLadder([0.0, 1e9])

    def test_fixed_single_point(self):
        ladder = DvfsLadder.fixed(2.0 * GHZ)
        assert ladder.min == ladder.max == 2.0 * GHZ


class TestStepping:
    @pytest.fixture
    def ladder(self):
        return DvfsLadder([1.0 * GHZ, 1.5 * GHZ, 2.0 * GHZ])

    def test_clamp_snaps_to_nearest(self, ladder):
        assert ladder.clamp(1.6 * GHZ) == 1.5 * GHZ
        assert ladder.clamp(1.8 * GHZ) == 2.0 * GHZ

    def test_step_down_floors_at_min(self, ladder):
        assert ladder.step_down(1.0 * GHZ) == 1.0 * GHZ
        assert ladder.step_down(2.0 * GHZ) == 1.5 * GHZ
        assert ladder.step_down(2.0 * GHZ, steps=5) == 1.0 * GHZ

    def test_step_up_caps_at_max(self, ladder):
        assert ladder.step_up(2.0 * GHZ) == 2.0 * GHZ
        assert ladder.step_up(1.0 * GHZ) == 1.5 * GHZ
        assert ladder.step_up(1.0 * GHZ, steps=9) == 2.0 * GHZ

    def test_contains(self, ladder):
        assert 1.5 * GHZ in ladder
        assert 1.7 * GHZ not in ladder

    def test_index_of_clamps(self, ladder):
        assert ladder.index_of(1.4 * GHZ) == 1
