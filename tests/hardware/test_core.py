"""Tests for cores and core sets: occupancy, accounting, callbacks."""

import pytest

from repro.errors import ResourceError
from repro.hardware import CoreSet, CpuCore, DvfsLadder, GHZ


def make_core(core_id="m/cpu0"):
    return CpuCore(core_id, DvfsLadder([1.2 * GHZ, 2.6 * GHZ]))


class TestCpuCore:
    def test_acquire_release_cycle(self):
        core = make_core()
        core.acquire(1.0)
        assert core.busy
        core.release(3.0)
        assert not core.busy
        assert core.busy_time == pytest.approx(2.0)

    def test_double_acquire_rejected(self):
        core = make_core()
        core.acquire(0.0)
        with pytest.raises(ResourceError):
            core.acquire(1.0)

    def test_release_when_free_rejected(self):
        with pytest.raises(ResourceError):
            make_core().release(1.0)

    def test_utilization_includes_open_interval(self):
        core = make_core()
        core.acquire(0.0)
        assert core.utilization(now=2.0) == pytest.approx(1.0)
        core.release(2.0)
        assert core.utilization(now=4.0) == pytest.approx(0.5)

    def test_frequency_snaps_to_ladder(self):
        core = make_core()
        assert core.set_frequency(1.3 * GHZ) == 1.2 * GHZ
        assert core.frequency == 1.2 * GHZ

    def test_default_frequency_is_max(self):
        assert make_core().frequency == 2.6 * GHZ


class TestCoreSet:
    def make_set(self, n=2):
        ladder = DvfsLadder([1.2 * GHZ, 2.6 * GHZ])
        return CoreSet("svc", [CpuCore(f"m/cpu{i}", ladder) for i in range(n)])

    def test_acquire_until_exhausted(self):
        cores = self.make_set(2)
        a = cores.try_acquire(0.0)
        b = cores.try_acquire(0.0)
        assert a is not None and b is not None and a is not b
        assert cores.try_acquire(0.0) is None
        assert cores.free_count == 0

    def test_release_wakes_subscribers(self):
        cores = self.make_set(1)
        woken = []
        cores.on_release(lambda: woken.append(True))
        core = cores.try_acquire(0.0)
        cores.release(core, 1.0)
        assert woken == [True]
        assert cores.free_count == 1

    def test_set_frequency_applies_to_all(self):
        cores = self.make_set(3)
        cores.set_frequency(1.2 * GHZ)
        assert all(c.frequency == 1.2 * GHZ for c in cores.cores)
        assert cores.frequency == 1.2 * GHZ

    def test_empty_set_rejected(self):
        with pytest.raises(ResourceError):
            CoreSet("svc", [])

    def test_utilization_averages(self):
        cores = self.make_set(2)
        core = cores.try_acquire(0.0)
        cores.release(core, 1.0)
        assert cores.utilization(now=1.0) == pytest.approx(0.5)
