"""Allocation lifecycle: exhaustion, release, reuse, fragmentation.

The control plane retires and reschedules replicas, so machines now see
allocate-release-allocate cycles that the original deploy-once flow
never exercised. These tests pin down the free-core accounting those
cycles rely on — and that first-fit reuse preserves the historical
bump-pointer layout when nothing was ever released.
"""

import pytest

from repro.errors import ResourceError
from repro.hardware import Cluster, Machine


class TestExhaustion:
    def test_exact_fit_drains_machine(self):
        m = Machine("node0", 4)
        m.allocate("a", 3)
        m.allocate("b", 1)
        assert m.unallocated_cores == 0

    def test_over_request_names_the_shortfall(self):
        m = Machine("node0", 4)
        m.allocate("a", 3)
        with pytest.raises(ResourceError, match="requested 2 cores"):
            m.allocate("b", 2)
        # The failed request changed nothing.
        assert m.unallocated_cores == 1
        m.allocate("b", 1)

    def test_zero_and_negative_requests_rejected(self):
        m = Machine("node0", 2)
        with pytest.raises(ResourceError):
            m.allocate("a", 0)
        with pytest.raises(ResourceError):
            m.allocate("a", -1)
        assert m.unallocated_cores == 2


class TestReleaseAndReuse:
    def test_allocate_release_allocate_reuses_cores(self):
        m = Machine("node0", 2)
        m.allocate("web-0", 2)
        assert m.unallocated_cores == 0
        m.release("web-0")
        assert m.unallocated_cores == 2
        again = m.allocate("web-1", 2)
        assert len(again) == 2

    def test_release_unknown_owner_rejected(self):
        m = Machine("node0", 2)
        with pytest.raises(ResourceError, match="no allocation"):
            m.release("ghost")

    def test_release_refuses_busy_cores(self):
        m = Machine("node0", 2)
        cores = m.allocate("web-0", 2)
        cores.cores[0].acquire(now=1.0)
        with pytest.raises(ResourceError, match="still busy"):
            m.release("web-0")
        # Still allocated: the refusal must not half-free the owner.
        assert m.unallocated_cores == 0
        cores.cores[0].release(now=2.0)
        m.release("web-0")
        assert m.unallocated_cores == 2

    def test_double_release_rejected(self):
        m = Machine("node0", 4)
        m.allocate("a", 2)
        m.release("a")
        with pytest.raises(ResourceError):
            m.release("a")


class TestFragmentation:
    def test_first_fit_fills_freed_hole(self):
        m = Machine("node0", 4)
        a = m.allocate("a", 1)
        m.allocate("b", 1)
        m.allocate("c", 1)
        freed = {c.core_id for c in a.cores}
        m.release("a")
        d = m.allocate("d", 1)
        # The lowest-index free core is the hole "a" left behind.
        assert {c.core_id for c in d.cores} == freed

    def test_fragmented_owner_spans_noncontiguous_cores(self):
        m = Machine("node0", 4)
        m.allocate("a", 1)  # cpu0
        m.allocate("b", 1)  # cpu1
        m.allocate("c", 1)  # cpu2
        m.release("b")      # hole at cpu1
        wide = m.allocate("wide", 2)  # cpu1 + cpu3
        ids = sorted(c.core_id for c in wide.cores)
        assert ids == ["node0/cpu1", "node0/cpu3"]

    def test_fragmented_free_cores_still_sum(self):
        m = Machine("node0", 6)
        for i in range(6):
            m.allocate(f"o{i}", 1)
        m.release("o1")
        m.release("o4")
        assert m.unallocated_cores == 2
        # A 2-core request fits even though the free cores are not
        # adjacent — cores are interchangeable.
        m.allocate("pair", 2)
        assert m.unallocated_cores == 0

    def test_bump_pointer_layout_when_nothing_released(self):
        """Without any release, first-fit must equal the historical
        bump-pointer allocator exactly — the bit-identity guarantee for
        worlds that never run a control plane."""
        m = Machine("node0", 6)
        layout = []
        for i, width in enumerate([2, 1, 3]):
            cs = m.allocate(f"o{i}", width)
            layout.extend(c.core_id for c in cs.cores)
        assert layout == [f"node0/cpu{i}" for i in range(6)]


class TestFailureDomains:
    def test_homogeneous_rack_zone_labels(self):
        cluster = Cluster.homogeneous(4, 1, racks=2, zones=2)
        assert [m.rack for m in cluster] == ["rack0", "rack1"] * 2
        assert [m.zone for m in cluster] == ["zone0", "zone1"] * 2

    def test_domain_of_levels(self):
        cluster = Cluster.homogeneous(2, 1, racks=2, zones=1)
        node0 = cluster.machine("node0")
        assert cluster.domain_of(node0, "machine") == "node0"
        assert cluster.domain_of(node0, "rack") == "rack0"
        assert cluster.domain_of(node0, "zone") == "zone0"
        with pytest.raises(ResourceError):
            cluster.domain_of(node0, "galaxy")

    def test_unlabelled_machine_is_its_own_domain(self):
        cluster = Cluster()
        m = cluster.add_machine(Machine("solo", 1))
        assert cluster.domain_of(m, "rack") == "solo"
        assert cluster.domain_of(m, "zone") == "solo"

    def test_failed_machines_leave_up_set(self):
        cluster = Cluster.homogeneous(3, 1)
        cluster.machine("node1").fail()
        assert [m.name for m in cluster.up_machines] == ["node0", "node2"]
        cluster.machine("node1").restore()
        assert len(cluster.up_machines) == 3

    def test_failure_domain_grouping(self):
        cluster = Cluster.homogeneous(4, 1, racks=2, zones=1)
        assert cluster.failure_domains("rack") == {
            "rack0": ["node0", "node2"],
            "rack1": ["node1", "node3"],
        }
        assert set(cluster.failure_domains("zone")) == {"zone0"}
