"""Tests for the distribution JSON codec."""

import numpy as np
import pytest

from repro.config import parse_distribution
from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    FrequencyTable,
    Histogram,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)
from repro.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestParametricKinds:
    def test_deterministic_microseconds(self, rng):
        dist = parse_distribution({"dist": "deterministic", "value_us": 8})
        assert isinstance(dist, Deterministic)
        assert dist.sample(rng) == pytest.approx(8e-6)

    def test_exponential(self):
        dist = parse_distribution({"dist": "exponential", "mean_us": 1000})
        assert isinstance(dist, Exponential)
        assert dist.mean() == pytest.approx(1e-3)

    def test_uniform(self):
        dist = parse_distribution(
            {"dist": "uniform", "low_us": 1, "high_us": 3}
        )
        assert isinstance(dist, Uniform)
        assert dist.mean() == pytest.approx(2e-6)

    def test_erlang(self):
        dist = parse_distribution({"dist": "erlang", "k": 4, "mean_us": 105})
        assert isinstance(dist, Erlang)
        assert dist.mean() == pytest.approx(105e-6)

    def test_lognormal(self):
        dist = parse_distribution(
            {"dist": "lognormal", "mean_us": 100, "cv": 0.5}
        )
        assert isinstance(dist, LogNormal)
        assert dist.mean() == pytest.approx(100e-6)

    def test_pareto(self):
        dist = parse_distribution(
            {"dist": "pareto", "scale_us": 10, "shape": 2.0}
        )
        assert isinstance(dist, Pareto)

    def test_weibull(self):
        dist = parse_distribution(
            {"dist": "weibull", "shape": 2.0, "scale_us": 10}
        )
        assert isinstance(dist, Weibull)

    def test_mixture(self):
        dist = parse_distribution(
            {
                "dist": "mixture",
                "components": [
                    {"weight": 0.5, "dist": {"dist": "deterministic", "value_us": 1}},
                    {"weight": 0.5, "dist": {"dist": "deterministic", "value_us": 3}},
                ],
            }
        )
        assert isinstance(dist, Mixture)
        assert dist.mean() == pytest.approx(2e-6)


class TestHistogramKind:
    def test_inline_histogram(self):
        dist = parse_distribution(
            {"dist": "histogram", "unit": "us", "edges": [0, 10], "counts": [1]}
        )
        assert isinstance(dist, Histogram)

    def test_file_histogram(self, tmp_path):
        Histogram([0.0, 1e-5], [1]).dump(tmp_path / "h.json", unit="us")
        dist = parse_distribution(
            {"dist": "histogram", "file": "h.json"}, base_dir=tmp_path
        )
        assert isinstance(dist, Histogram)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            parse_distribution(
                {"dist": "histogram", "file": "nope.json"}, base_dir=tmp_path
            )


class TestFrequencyTableKind:
    def test_per_frequency_entries(self, rng):
        table = parse_distribution(
            {
                "dist": "frequency_table",
                "entries": [
                    {"frequency_ghz": 2.6,
                     "dist": {"dist": "deterministic", "value_us": 10}},
                    {"frequency_ghz": 1.3,
                     "dist": {"dist": "deterministic", "value_us": 20}},
                ],
            }
        )
        assert isinstance(table, FrequencyTable)
        assert table.at(1.3e9).sample(rng) == pytest.approx(20e-6)

    def test_nested_tables_rejected(self):
        with pytest.raises(ConfigError):
            parse_distribution(
                {
                    "dist": "frequency_table",
                    "entries": [
                        {"frequency_ghz": 2.6,
                         "dist": {"dist": "frequency_table", "entries": []}},
                    ],
                }
            )


class TestErrors:
    def test_missing_dist_field(self):
        with pytest.raises(ConfigError):
            parse_distribution({"mean_us": 1})

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            parse_distribution({"dist": "magic"})

    def test_missing_parameter(self):
        with pytest.raises(ConfigError):
            parse_distribution({"dist": "exponential"})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            parse_distribution("exponential")

    def test_source_in_message(self):
        with pytest.raises(ConfigError, match="svc.json"):
            parse_distribution({"dist": "nope"}, source="svc.json")
