"""Tests for service/machines/graph/path/client parsing and the full
SimulationSpec round trip."""

import json

import pytest

from repro.config import (
    ServiceTemplate,
    SimulationSpec,
    parse_machines,
    parse_tree,
    table2_payload,
)
from repro.errors import ConfigError
from repro.hardware import GHZ
from repro.service import EpollQueue, MultiThreadedModel, SocketQueue

from .conftest import CACHE_SERVICE, FRONTEND_SERVICE, MACHINES, PATHS


class TestServiceTemplate:
    def test_builds_stages_and_paths(self):
        template = ServiceTemplate(CACHE_SERVICE)
        stages = template.build_stages()
        assert len(stages) == 3
        assert isinstance(stages[0].queue, EpollQueue)
        assert isinstance(stages[1].queue, SocketQueue)
        selector = template.build_selector()
        assert len(selector.paths) == 2

    def test_instances_get_fresh_queues(self):
        template = ServiceTemplate(CACHE_SERVICE)
        a = template.build_stages()
        b = template.build_stages()
        assert a[0].queue is not b[0].queue

    def test_probabilities_must_cover_all_paths(self):
        bad = json.loads(json.dumps(CACHE_SERVICE))
        del bad["paths"][1]["probability"]
        with pytest.raises(ConfigError):
            ServiceTemplate(bad).build_selector()

    def test_stage_without_cost_rejected(self):
        bad = json.loads(json.dumps(FRONTEND_SERVICE))
        del bad["stages"][0]["cost"]
        with pytest.raises(ConfigError):
            ServiceTemplate(bad)

    def test_unknown_cost_key_rejected(self):
        bad = json.loads(json.dumps(FRONTEND_SERVICE))
        bad["stages"][0]["cost"]["per_cacheline"] = {
            "dist": "deterministic", "value_us": 1
        }
        with pytest.raises(ConfigError):
            ServiceTemplate(bad)

    def test_missing_service_name_rejected(self):
        with pytest.raises(ConfigError):
            ServiceTemplate({"stages": [], "paths": []})


class TestMachines:
    def test_parse_cluster(self):
        cluster = parse_machines(MACHINES)
        assert len(cluster) == 2
        server = cluster.machine("server0")
        assert server.num_cores == 16
        assert server.ladder.min == pytest.approx(1.2 * GHZ)
        assert server.ladder.max == pytest.approx(2.6 * GHZ)
        assert len(server.ladder) == 15

    def test_table2_payload_parses(self):
        cluster = parse_machines({"machines": [table2_payload()]})
        assert cluster.machine("server0").num_cores == 40

    def test_empty_machines_rejected(self):
        with pytest.raises(ConfigError):
            parse_machines({"machines": []})

    def test_bad_dvfs_rejected(self):
        with pytest.raises(ConfigError):
            parse_machines(
                {"machines": [{"name": "a", "cores": 1,
                               "dvfs": {"min_ghz": 2.0, "max_ghz": 1.0}}]}
            )


class TestPathParsing:
    def test_parse_tree_structure(self):
        tree = parse_tree(PATHS["trees"][0])
        assert len(tree) == 3
        assert tree.node("frontend").on_enter.action == "block"
        assert tree.node("frontend_resp").same_instance_as == "frontend"

    def test_invalid_edges_rejected(self):
        spec = json.loads(json.dumps(PATHS["trees"][0]))
        spec["edges"].append(["frontend"])
        with pytest.raises(ConfigError):
            parse_tree(spec)

    def test_cycle_rejected_via_validate(self):
        spec = json.loads(json.dumps(PATHS["trees"][0]))
        spec["edges"].append(["frontend_resp", "frontend"])
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            parse_tree(spec)


class TestSimulationSpec:
    def test_load_and_build(self, spec_dir):
        spec = SimulationSpec.load(spec_dir)
        assert sorted(spec.templates) == ["cache", "frontend"]
        world, client = spec.build(seed=3)
        assert client is not None
        assert world.deployment.netproc("server0") is not None
        instance = world.instance("frontend")
        assert isinstance(instance.model, MultiThreadedModel)

    def test_end_to_end_run(self, spec_dir):
        spec = SimulationSpec.load(spec_dir)
        world, client = spec.build(seed=3)
        client.start()
        world.sim.run()
        assert client.requests_completed == 50
        assert client.latencies.mean() < 5e-3
        # Both request types flowed.
        types = {r.request_type for r in client.completed_requests}
        assert types == {"read", "write"}

    def test_build_is_reproducible(self, spec_dir):
        spec = SimulationSpec.load(spec_dir)

        def run():
            world, client = spec.build(seed=9)
            client.start()
            world.sim.run()
            return client.latencies.samples()[1].tolist()

        assert run() == run()

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            SimulationSpec.load(tmp_path / "ghost")

    def test_missing_services_rejected(self, tmp_path):
        (tmp_path / "machines.json").write_text("{}")
        with pytest.raises(ConfigError):
            SimulationSpec.load(tmp_path)

    def test_unknown_service_in_graph_rejected(self, spec_dir):
        graph = json.loads((spec_dir / "graph.json").read_text())
        graph["instances"][0]["service"] = "ghost"
        (spec_dir / "graph.json").write_text(json.dumps(graph))
        with pytest.raises(ConfigError):
            SimulationSpec.load(spec_dir).build()
