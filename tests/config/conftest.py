"""A complete on-disk spec directory used by the config-layer tests:
a minimal 2-tier (frontend -> cache) application in the Table I format."""

import json

import pytest

FRONTEND_SERVICE = {
    "service_name": "frontend",
    "stages": [
        {
            "stage_name": "epoll", "stage_id": 0,
            "queue_type": "epoll", "batching": True,
            "queue_parameter": [None, 16],
            "cost": {
                "base": {"dist": "deterministic", "value_us": 8},
                "per_job": {"dist": "deterministic", "value_us": 1.5},
            },
        },
        {
            "stage_name": "handler", "stage_id": 1,
            "queue_type": "single", "batching": False,
            "cost": {"base": {"dist": "erlang", "k": 4, "mean_us": 100}},
        },
        {
            "stage_name": "respond", "stage_id": 2,
            "queue_type": "single", "batching": False,
            "cost": {"base": {"dist": "deterministic", "value_us": 10}},
        },
    ],
    "paths": [
        {"path_id": 0, "path_name": "handle", "stages": [0, 1]},
        {"path_id": 1, "path_name": "respond", "stages": [0, 2]},
    ],
}

CACHE_SERVICE = {
    "service_name": "cache",
    "stages": [
        {
            "stage_name": "epoll", "stage_id": 0,
            "queue_type": "epoll", "batching": True,
            "queue_parameter": [None, 16],
            "cost": {
                "base": {"dist": "deterministic", "value_us": 5},
                "per_job": {"dist": "deterministic", "value_us": 1},
            },
        },
        {
            "stage_name": "read", "stage_id": 1,
            "queue_type": "socket", "batching": True,
            "queue_parameter": [16],
            "cost": {
                "base": {"dist": "deterministic", "value_us": 2},
                "per_byte": {"dist": "deterministic", "value_us": 0.008},
            },
        },
        {
            "stage_name": "process", "stage_id": 2,
            "queue_type": "single",
            "cost": {"base": {"dist": "deterministic", "value_us": 8}},
        },
    ],
    "paths": [
        {"path_id": 0, "path_name": "get", "stages": [0, 1, 2],
         "probability": 0.9},
        {"path_id": 1, "path_name": "set", "stages": [0, 1, 2],
         "probability": 0.1},
    ],
}

MACHINES = {
    "machines": [
        {"name": "server0", "cores": 16,
         "dvfs": {"min_ghz": 1.2, "max_ghz": 2.6, "step_ghz": 0.1}},
        {"name": "client", "cores": 4},
    ],
    "network": {"propagation_us": 20, "loopback_us": 5, "bandwidth_gbps": 1},
}

GRAPH = {
    "instances": [
        {"name": "frontend0", "service": "frontend", "machine": "server0",
         "cores": 4, "tier": "frontend",
         "model": {"type": "multithreaded", "threads": 4,
                   "context_switch_us": 1}},
        {"name": "cache0", "service": "cache", "machine": "server0",
         "cores": 2, "tier": "cache",
         "model": {"type": "multithreaded", "threads": 2}},
    ],
    "netproc": [{"machine": "server0", "cores": 2}],
    "pools": {"frontend": 32, "cache": 8},
    "balancers": {"frontend": "round_robin"},
}

PATHS = {
    "trees": [
        {
            "name": "get_flow",
            "nodes": [
                {"name": "frontend", "service": "frontend",
                 "path_name": "handle",
                 "on_enter": {"action": "block"}},
                {"name": "cache", "service": "cache", "path_name": "get"},
                {"name": "frontend_resp", "service": "frontend",
                 "path_name": "respond",
                 "same_instance_as": "frontend",
                 "on_leave": {"action": "unblock",
                              "connection_of": "frontend"}},
            ],
            "edges": [["frontend", "cache"], ["cache", "frontend_resp"]],
        }
    ]
}

CLIENT = {
    "name": "client",
    "machine": "client",
    "arrivals": {"process": "poisson",
                 "pattern": {"type": "constant", "qps": 500}},
    "mix": [
        {"name": "read", "weight": 0.9,
         "size": {"dist": "exponential", "mean_bytes": 256}},
        {"name": "write", "weight": 0.1, "size_bytes": 512},
    ],
    "max_requests": 50,
}


@pytest.fixture
def spec_dir(tmp_path):
    """Write the full spec to disk and return its directory."""
    services = tmp_path / "services"
    services.mkdir()
    (services / "frontend.json").write_text(json.dumps(FRONTEND_SERVICE))
    (services / "cache.json").write_text(json.dumps(CACHE_SERVICE))
    (tmp_path / "machines.json").write_text(json.dumps(MACHINES))
    (tmp_path / "graph.json").write_text(json.dumps(GRAPH))
    (tmp_path / "path.json").write_text(json.dumps(PATHS))
    (tmp_path / "client.json").write_text(json.dumps(CLIENT))
    return tmp_path
