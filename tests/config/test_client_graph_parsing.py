"""Tests for client.json arrival/pattern parsing and graph.json
execution-model parsing paths not covered by the spec round-trip."""

import pytest

from repro.config.client_config import parse_arrivals, parse_mix, parse_pattern
from repro.config.graph_config import _parse_model
from repro.errors import ConfigError
from repro.service import MultiThreadedModel, SimpleModel
from repro.workload import (
    ConstantLoad,
    DeterministicArrivals,
    DiurnalPattern,
    PoissonArrivals,
    StepPattern,
)


class TestPatternParsing:
    def test_constant(self):
        pattern = parse_pattern({"type": "constant", "qps": 500}, "t")
        assert isinstance(pattern, ConstantLoad)
        assert pattern.qps == 500

    def test_diurnal(self):
        pattern = parse_pattern(
            {"type": "diurnal", "low_qps": 100, "high_qps": 400,
             "period_s": 60, "phase_s": 5},
            "t",
        )
        assert isinstance(pattern, DiurnalPattern)
        assert pattern.rate(5) == pytest.approx(100)

    def test_steps(self):
        pattern = parse_pattern(
            {"type": "steps", "steps": [[0, 100], [10, 300]]}, "t"
        )
        assert isinstance(pattern, StepPattern)
        assert pattern.rate(11) == 300

    def test_unknown_pattern(self):
        with pytest.raises(ConfigError):
            parse_pattern({"type": "lunar"}, "t")


class TestArrivalParsing:
    def test_poisson_default(self):
        arrivals = parse_arrivals(
            {"pattern": {"type": "constant", "qps": 100}}, "t"
        )
        assert isinstance(arrivals, PoissonArrivals)

    def test_deterministic_process(self):
        arrivals = parse_arrivals(
            {"process": "deterministic",
             "pattern": {"type": "constant", "qps": 100}},
            "t",
        )
        assert isinstance(arrivals, DeterministicArrivals)

    def test_unknown_process(self):
        with pytest.raises(ConfigError):
            parse_arrivals(
                {"process": "psychic",
                 "pattern": {"type": "constant", "qps": 1}},
                "t",
            )


class TestMixParsing:
    def test_exponential_and_fixed_sizes(self):
        import numpy as np

        mix = parse_mix(
            [
                {"name": "read", "weight": 0.9,
                 "size": {"dist": "exponential", "mean_bytes": 100}},
                {"name": "write", "weight": 0.1, "size_bytes": 64},
            ],
            "t",
        )
        rng = np.random.default_rng(0)
        names = {mix.sample(rng)[0] for _ in range(200)}
        assert names == {"read", "write"}

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigError):
            parse_mix([{"name": "read"}], "t")

    def test_unsupported_size_spec(self):
        with pytest.raises(ConfigError):
            parse_mix(
                [{"name": "a", "weight": 1.0,
                  "size": {"dist": "pareto", "scale_us": 1}}],
                "t",
            )


class TestModelParsing:
    def test_simple_default(self):
        assert isinstance(_parse_model({}, "t"), SimpleModel)

    def test_multithreaded(self):
        model = _parse_model(
            {"type": "multithreaded", "threads": 4, "context_switch_us": 3},
            "t",
        )
        assert isinstance(model, MultiThreadedModel)
        assert model.num_threads == 4
        assert model.context_switch == pytest.approx(3e-6)

    def test_dynamic_spawning(self):
        model = _parse_model(
            {"type": "multithreaded", "threads": 2, "dynamic": True,
             "max_threads": 8},
            "t",
        )
        assert model.dynamic
        assert model.max_threads == 8

    def test_threads_required(self):
        with pytest.raises(ConfigError):
            _parse_model({"type": "multithreaded"}, "t")

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            _parse_model({"type": "quantum"}, "t")
