"""client.json ``resilience`` block parsing and faults.json wiring
through :class:`~repro.config.SimulationSpec`."""

import json

import pytest

from repro.config import SimulationSpec
from repro.config.resilience_config import parse_resilience
from repro.errors import ConfigError
from repro.resilience import ResiliencePolicy


class TestParseResilience:
    def test_absent_or_empty_is_no_policy(self):
        assert parse_resilience(None) is None
        assert parse_resilience({}) is None

    def test_full_block(self):
        policy = parse_resilience(
            {
                "timeout": 0.05,
                "retry": {
                    "max_attempts": 3,
                    "backoff_base": 0.001,
                    "budget": {"ratio": 0.2, "min_tokens": 4},
                },
                "hedge": {"delay": 0.01, "max_hedges": 2},
                "breaker": {"failure_threshold": 7, "reset_timeout": 0.5},
                "admission": {"max_queue": 64, "fallback_tree": "cheap"},
            }
        )
        assert isinstance(policy, ResiliencePolicy)
        assert policy.timeout == 0.05
        assert policy.retry.max_attempts == 3
        assert policy.retry.budget.ratio == 0.2
        assert policy.hedge.max_hedges == 2
        assert policy.breaker.failure_threshold == 7
        assert policy.admission.max_queue == 64
        assert policy.admission.fallback_tree == "cheap"

    def test_timeout_only(self):
        policy = parse_resilience({"timeout": 0.1})
        assert policy.timeout == 0.1
        assert policy.retry is None and policy.hedge is None

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown resilience fields"):
            parse_resilience({"timeouts": 0.1})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown retry fields"):
            parse_resilience({"retry": {"attempts": 3}})
        with pytest.raises(ConfigError, match="unknown breaker fields"):
            parse_resilience({"breaker": {"threshold": 3}})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError, match="must be an object"):
            parse_resilience([0.1])

    def test_invalid_values_surface_config_error(self):
        with pytest.raises(ConfigError):
            parse_resilience({"timeout": -1.0})
        with pytest.raises(ConfigError):
            parse_resilience({"hedge": {"delay": 0.0}})


class TestSpecWiring:
    def test_client_resilience_reaches_the_client(self, spec_dir):
        payload = json.loads((spec_dir / "client.json").read_text())
        payload["resilience"] = {
            "timeout": 0.5,
            "retry": {"max_attempts": 2, "jitter": 0.0},
        }
        (spec_dir / "client.json").write_text(json.dumps(payload))
        spec = SimulationSpec.load(spec_dir)
        world, client = spec.build(seed=1)
        assert client.resilience is not None
        assert client.resilience.timeout == 0.5
        client.start()
        world.sim.run()
        assert client.requests_ok == client.requests_sent
        assert all(r.ok for r in client.completed_requests)

    def test_faults_json_is_loaded_and_armed(self, spec_dir):
        (spec_dir / "faults.json").write_text(
            json.dumps(
                {
                    "faults": [
                        {"at": 0.01, "kind": "slow", "instance": "cache0",
                         "factor": 2.0},
                    ]
                }
            )
        )
        spec = SimulationSpec.load(spec_dir)
        world, client = spec.build(seed=1)
        assert world.fault_injector is not None
        assert len(world.fault_injector.plan) == 1
        client.start()
        world.sim.run()
        assert len(world.fault_injector.log) == 1
        assert world.instance("cache").slow_factor == 2.0

    def test_machine_faults_reach_the_cluster(self, spec_dir):
        # The injector must be built with the cluster, or machine_fail
        # kinds in faults.json are rejected at arm time.
        (spec_dir / "faults.json").write_text(
            json.dumps(
                {
                    "faults": [
                        {"at": 0.01, "kind": "machine_fail",
                         "machine": "server0"},
                        {"at": 0.02, "kind": "machine_recover",
                         "machine": "server0"},
                    ]
                }
            )
        )
        spec = SimulationSpec.load(spec_dir)
        world, client = spec.build(seed=1)
        client.start()
        world.sim.run()
        assert len(world.fault_injector.log) == 2
        assert world.cluster.machine("server0").up

    def test_no_faults_file_means_no_injector(self, spec_dir):
        spec = SimulationSpec.load(spec_dir)
        world, _ = spec.build(seed=1)
        assert world.fault_injector is None

    def test_bad_faults_json_rejected_at_build(self, spec_dir):
        (spec_dir / "faults.json").write_text("[{\"kind\": \"crash\"}]")
        spec = SimulationSpec.load(spec_dir)
        with pytest.raises(ConfigError, match="'at' and 'kind'"):
            spec.build(seed=1)
