"""Integration tests for the open-loop client against a tiny service."""

import pytest

from repro.errors import WorkloadError
from repro.topology import PathNode, PathTree
from repro.workload import DiurnalPattern, OpenLoopClient, RequestMix

from ..topology.conftest import build_instance, build_world


@pytest.fixture
def world(sim, network):
    cluster, deployment, dispatcher = build_world(sim, network)
    deployment.add_instance(
        build_instance(
            sim, cluster, "web0", "node0", service_time=100e-6, cores=4, tier="web"
        )
    )
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    return dispatcher


# Reuse the topology fixtures.
from ..topology.conftest import network, sim  # noqa: E402,F401


class TestOpenLoopClient:
    def test_generates_until_max_requests(self, sim, world):
        client = OpenLoopClient(sim, world, arrivals=1000, max_requests=50)
        client.start()
        sim.run()
        assert client.requests_sent == 50
        assert client.requests_completed == 50
        assert len(client.latencies) == 50

    def test_stop_at_bounds_generation(self, sim, world):
        client = OpenLoopClient(sim, world, arrivals=1000, stop_at=0.1)
        client.start()
        sim.run()
        # ~100 arrivals expected in 0.1s at 1000 QPS.
        assert 50 < client.requests_sent < 200
        assert client.outstanding == 0

    def test_open_loop_rate_independent_of_service(self, sim, network):
        # A saturated server must not slow down arrivals (open loop).
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(
                sim, cluster, "slow0", "node0", service_time=0.05, cores=1,
                tier="slow",
            )
        )
        dispatcher.add_tree(PathTree().chain(PathNode("slow", "slow")))
        client = OpenLoopClient(sim, dispatcher, arrivals=1000, stop_at=0.2)
        client.start()
        sim.run()
        assert client.requests_sent > 150  # arrivals kept their schedule
        # Draining ~200 x 50ms of queued work takes ~10s of simulated
        # time: the backlog proves arrivals did not wait for responses.
        assert sim.now > 5.0
        assert client.latencies.max() > 1.0

    def test_latencies_recorded_with_completion_times(self, sim, world):
        client = OpenLoopClient(sim, world, arrivals=2000, max_requests=20)
        client.start()
        sim.run()
        times, values = client.latencies.samples()
        assert (values > 0).all()
        assert (times[1:] >= times[:-1]).all()

    def test_request_mix_propagates_types(self, sim, world):
        mix = RequestMix.from_weights({"read": 0.5, "write": 0.5})
        client = OpenLoopClient(sim, world, arrivals=1000, mix=mix, max_requests=40)
        client.start()
        sim.run()
        types = {r.request_type for r in client.completed_requests}
        assert types == {"read", "write"}

    def test_pattern_arrivals(self, sim, world):
        pattern = DiurnalPattern(low=500, high=2000, period=1.0)
        client = OpenLoopClient(sim, world, arrivals=pattern, stop_at=1.0)
        client.start()
        sim.run()
        assert client.requests_sent > 200

    def test_extra_on_complete_callback(self, sim, world):
        seen = []
        client = OpenLoopClient(
            sim, world, arrivals=1000, max_requests=5, on_complete=seen.append
        )
        client.start()
        sim.run()
        assert len(seen) == 5

    def test_unbounded_client_rejected(self, sim, world):
        with pytest.raises(WorkloadError):
            OpenLoopClient(sim, world, arrivals=1000)

    def test_double_start_rejected(self, sim, world):
        client = OpenLoopClient(sim, world, arrivals=1000, max_requests=1)
        client.start()
        with pytest.raises(WorkloadError):
            client.start()
