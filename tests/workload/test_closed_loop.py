"""Tests for the closed-loop client extension."""

import pytest

from repro.distributions import Deterministic
from repro.errors import WorkloadError
from repro.topology import PathNode, PathTree
from repro.workload import ClosedLoopClient

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


def make_world(sim, network, service_time=1e-3, cores=1):
    cluster, deployment, dispatcher = build_world(sim, network)
    deployment.add_instance(
        build_instance(
            sim, cluster, "web0", "node0",
            service_time=service_time, cores=cores, tier="web",
        )
    )
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    return dispatcher


class TestClosedLoop:
    def test_outstanding_never_exceeds_concurrency(self, sim, network):
        dispatcher = make_world(sim, network)
        client = ClosedLoopClient(sim, dispatcher, concurrency=4, max_requests=40)
        peak = []

        original = client._issue

        def tracking_issue():
            original()
            peak.append(client.outstanding)

        client._issue = tracking_issue
        client.start()
        sim.run()
        assert max(peak) <= 4
        assert client.requests_completed == 40

    def test_throughput_bounded_by_little_law(self, sim, network):
        # 1 user on a 1ms server: throughput can never exceed ~1/RTT.
        dispatcher = make_world(sim, network, service_time=1e-3)
        client = ClosedLoopClient(sim, dispatcher, concurrency=1, max_requests=100)
        client.start()
        sim.run()
        # Each request takes >= service time, strictly sequential.
        assert sim.now >= 100 * 1e-3

    def test_think_time_slows_issue_rate(self, sim, network):
        dispatcher = make_world(sim, network, service_time=1e-4)
        client = ClosedLoopClient(
            sim, dispatcher, concurrency=1, max_requests=10,
            think_time=Deterministic(10e-3),
        )
        client.start()
        sim.run()
        assert sim.now >= 9 * 10e-3

    def test_closed_loop_self_limits_under_overload(self, sim, network):
        # Unlike the open-loop client, a saturated server throttles the
        # closed-loop client instead of building an unbounded backlog.
        dispatcher = make_world(sim, network, service_time=10e-3)
        client = ClosedLoopClient(
            sim, dispatcher, concurrency=2, stop_at=0.5
        )
        client.start()
        sim.run()
        assert client.outstanding == 0
        # ~0.5s / 10ms * min(2 users, 1 core) ~ 50 requests.
        assert client.requests_completed <= 60

    def test_validation(self, sim, network):
        dispatcher = make_world(sim, network)
        with pytest.raises(WorkloadError):
            ClosedLoopClient(sim, dispatcher, concurrency=0, max_requests=1)
        with pytest.raises(WorkloadError):
            ClosedLoopClient(sim, dispatcher, concurrency=1)
        client = ClosedLoopClient(sim, dispatcher, concurrency=1, max_requests=1)
        client.start()
        with pytest.raises(WorkloadError):
            client.start()
