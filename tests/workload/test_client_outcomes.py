"""Open-loop client outcome accounting: goodput excludes errors."""

import pytest

from repro.resilience import ResiliencePolicy
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


class TestOutcomeTallies:
    def build(self, sim, network, service_time):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=service_time, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        return deployment, dispatcher

    def test_ok_requests_tally_and_count_in_goodput(self, sim, network):
        _, dispatcher = self.build(sim, network, service_time=100e-6)
        client = OpenLoopClient(sim, dispatcher, arrivals=1000, max_requests=20)
        client.start()
        sim.run()
        assert client.outcomes["ok"] == 20
        assert client.requests_ok == 20
        assert client.requests_errored == 0
        assert len(client.latencies) == 20

    def test_timeouts_tally_separately_and_skip_latency(self, sim, network):
        _, dispatcher = self.build(sim, network, service_time=50e-3)
        client = OpenLoopClient(
            sim, dispatcher, arrivals=100, max_requests=10,
            resilience=ResiliencePolicy(timeout=1e-3),
        )
        client.start()
        sim.run()
        assert client.outcomes["timeout"] == 10
        assert client.requests_ok == 0
        assert client.requests_errored == 10
        # Latency percentiles describe served requests only.
        assert len(client.latencies) == 0

    def test_throughput_reports_goodput(self, sim, network):
        """Crash the only replica mid-run: completions stop counting
        even though requests keep resolving (as failures)."""
        deployment, dispatcher = self.build(sim, network, service_time=100e-6)
        web0 = deployment.find_instance("web0")
        sim.schedule_at(5e-3, web0.crash)
        client = OpenLoopClient(
            sim, dispatcher, arrivals=1000, stop_at=10e-3,
        )
        client.start()
        sim.run()
        assert client.requests_errored > 0
        assert client.requests_ok + client.requests_errored == (
            client.requests_completed
        )
        goodput = client.throughput(0.0, 10e-3)
        assert goodput == pytest.approx(client.requests_ok / 10e-3, rel=0.01)
