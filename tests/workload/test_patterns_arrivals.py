"""Tests for load patterns, arrival processes, and request mixes."""

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.errors import WorkloadError
from repro.workload import (
    ConstantLoad,
    DeterministicArrivals,
    DiurnalPattern,
    MMPPArrivals,
    PoissonArrivals,
    RequestMix,
    RequestType,
    StepPattern,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestConstantLoad:
    def test_rate_is_flat(self):
        load = ConstantLoad(1000)
        assert load.rate(0) == load.rate(100) == 1000
        assert load.max_rate() == 1000

    def test_nonpositive_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantLoad(0)


class TestDiurnalPattern:
    def test_trough_and_peak(self):
        p = DiurnalPattern(low=100, high=500, period=60.0)
        assert p.rate(0) == pytest.approx(100)
        assert p.rate(30) == pytest.approx(500)
        assert p.rate(60) == pytest.approx(100)
        assert p.max_rate() == 500

    def test_phase_shifts_trough(self):
        p = DiurnalPattern(low=100, high=500, period=60.0, phase=15.0)
        assert p.rate(15) == pytest.approx(100)

    def test_rate_stays_in_bounds(self):
        p = DiurnalPattern(low=100, high=500, period=60.0)
        rates = [p.rate(t) for t in np.linspace(0, 120, 500)]
        assert min(rates) >= 100 - 1e-9
        assert max(rates) <= 500 + 1e-9

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalPattern(low=500, high=100, period=60)
        with pytest.raises(WorkloadError):
            DiurnalPattern(low=1, high=2, period=0)


class TestStepPattern:
    def test_piecewise_rates(self):
        p = StepPattern([(0, 100), (10, 300), (20, 50)])
        assert p.rate(5) == 100
        assert p.rate(10) == 300
        assert p.rate(25) == 50
        assert p.max_rate() == 300

    def test_must_cover_time_zero(self):
        with pytest.raises(WorkloadError):
            StepPattern([(5, 100)])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            StepPattern([])


class TestArrivalProcesses:
    def test_poisson_mean_interarrival(self, rng):
        arrivals = PoissonArrivals.at_rate(1000)
        gaps = [arrivals.next_interarrival(0.0, rng) for _ in range(50_000)]
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.03)

    def test_deterministic_gap(self, rng):
        arrivals = DeterministicArrivals.at_rate(100)
        assert arrivals.next_interarrival(0.0, rng) == pytest.approx(0.01)

    def test_nonhomogeneous_tracks_pattern(self, rng):
        pattern = StepPattern([(0, 100), (10, 10_000)])
        arrivals = PoissonArrivals(pattern)
        early = np.mean([arrivals.next_interarrival(1.0, rng) for _ in range(5000)])
        late = np.mean([arrivals.next_interarrival(11.0, rng) for _ in range(5000)])
        assert early / late == pytest.approx(100, rel=0.1)

    def test_mmpp_alternates_rates(self, rng):
        arrivals = MMPPArrivals(low_qps=10, high_qps=10_000, mean_dwell=1.0)
        gaps = [arrivals.next_interarrival(float(t), rng) for t in range(2000)]
        # Mixture of two very different rates -> hugely dispersed gaps.
        assert np.std(gaps) > np.mean(gaps)

    def test_mmpp_validation(self):
        with pytest.raises(WorkloadError):
            MMPPArrivals(0, 10, 1)
        with pytest.raises(WorkloadError):
            MMPPArrivals(1, 10, 0)


class TestBufferedGapSampler:
    def test_poisson_sampler_matches_scalar_path(self):
        # make_sampler buffers unit exponentials; the gap stream must be
        # bitwise-identical to repeated next_interarrival calls.
        arrivals = PoissonArrivals.at_rate(1000)
        scalar_rng = np.random.default_rng(21)
        buffered_rng = np.random.default_rng(21)
        gap = arrivals.make_sampler(buffered_rng, block=16)
        scalar = [arrivals.next_interarrival(0.0, scalar_rng)
                  for _ in range(100)]
        assert [gap(0.0) for _ in range(100)] == scalar

    def test_poisson_sampler_tracks_time_varying_rate(self):
        pattern = StepPattern([(0, 100), (10, 10_000)])
        arrivals = PoissonArrivals(pattern)
        scalar_rng = np.random.default_rng(22)
        buffered_rng = np.random.default_rng(22)
        gap = arrivals.make_sampler(buffered_rng, block=8)
        times = [1.0, 11.0] * 20  # hop across the rate step every draw
        scalar = [arrivals.next_interarrival(t, scalar_rng) for t in times]
        assert [gap(t) for t in times] == scalar

    def test_poisson_sampler_rejects_dead_pattern(self):
        class DeadPattern(ConstantLoad):
            def rate(self, now):
                return 0.0

        pattern = DeadPattern(1.0)
        gap = PoissonArrivals(pattern).make_sampler(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            gap(0.0)

    def test_default_sampler_wraps_scalar_path(self):
        arrivals = DeterministicArrivals.at_rate(100)
        gap = arrivals.make_sampler(np.random.default_rng(0))
        assert gap(0.0) == pytest.approx(0.01)


class TestRequestMix:
    def test_single_helper(self, rng):
        mix = RequestMix.single("read", size=100)
        name, size = mix.sample(rng)
        assert name == "read"
        assert size == 100.0

    def test_weighted_sampling(self, rng):
        mix = RequestMix.from_weights({"read": 0.9, "write": 0.1})
        names = [mix.sample(rng)[0] for _ in range(20_000)]
        assert names.count("write") / len(names) == pytest.approx(0.1, abs=0.01)

    def test_distribution_sizes(self, rng):
        mix = RequestMix.single("read", size=Exponential(500))
        sizes = [mix.sample(rng)[1] for _ in range(20_000)]
        assert np.mean(sizes) == pytest.approx(500, rel=0.05)

    def test_probabilities_property(self):
        mix = RequestMix.from_weights({"a": 3, "b": 1})
        assert mix.probabilities == {"a": 0.75, "b": 0.25}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RequestMix([])
        with pytest.raises(WorkloadError):
            RequestMix([RequestType("a", 0.0)])
        with pytest.raises(WorkloadError):
            RequestMix([RequestType("a", 1.0), RequestType("a", 1.0)])
        with pytest.raises(WorkloadError):
            RequestType("", 1.0)
        with pytest.raises(WorkloadError):
            RequestType("a", -1.0)
