"""Tests for trace-replay arrivals."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient, TraceArrivals

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestTraceArrivals:
    def test_replays_exact_gaps(self, rng):
        trace = TraceArrivals([0.1, 0.3, 0.35])
        now = 0.0
        arrivals = []
        for _ in range(3):
            gap = trace.next_interarrival(now, rng)
            now += gap
            arrivals.append(now)
        assert arrivals == pytest.approx([0.1, 0.3, 0.35])

    def test_exhaustion_raises_without_cycle(self, rng):
        trace = TraceArrivals([0.1])
        trace.next_interarrival(0.0, rng)
        with pytest.raises(WorkloadError):
            trace.next_interarrival(0.1, rng)

    def test_cycling_repeats_shifted(self, rng):
        trace = TraceArrivals([0.1, 0.2], cycle=True)
        now = 0.0
        arrivals = []
        for _ in range(4):
            now += trace.next_interarrival(now, rng)
            arrivals.append(round(now, 6))
        assert arrivals == pytest.approx([0.1, 0.2, 0.3, 0.4])

    def test_remaining_counter(self, rng):
        trace = TraceArrivals([0.1, 0.2, 0.3])
        assert trace.remaining == 3
        trace.next_interarrival(0.0, rng)
        assert trace.remaining == 2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([])
        with pytest.raises(WorkloadError):
            TraceArrivals([0.2, 0.1])
        with pytest.raises(WorkloadError):
            TraceArrivals([-0.1, 0.2])

    def test_client_replays_trace(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-5, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        timestamps = [0.001 * (i + 1) for i in range(20)]
        client = OpenLoopClient(
            sim, dispatcher, arrivals=TraceArrivals(timestamps),
            max_requests=20,
        )
        client.start()
        sim.run()
        created = sorted(r.created_at for r in client.completed_requests)
        assert created == pytest.approx(timestamps)
