"""Fixtures for resilience tests (reuses the topology world builders)."""

from ..topology.conftest import network, sim  # noqa: F401 (fixture reuse)
