"""Unit tests for resilience policy objects and the circuit breaker."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    HedgePolicy,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
)


class TestRetryBudget:
    def test_min_tokens_allow_cold_retries(self):
        budget = RetryBudget(ratio=0.1, min_tokens=3)
        assert [budget.try_spend() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_ratio_scales_with_primaries(self):
        budget = RetryBudget(ratio=0.5, min_tokens=0)
        for _ in range(10):
            budget.note_primary()
        assert sum(budget.try_spend() for _ in range(10)) == 5

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ConfigError):
            RetryBudget(min_tokens=-1)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=1e-3, backoff_multiplier=2.0,
            backoff_cap=3e-3, jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff(n, rng) for n in (2, 3, 4, 5)]
        assert delays == [1e-3, 2e-3, 3e-3, 3e-3]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=1e-3, jitter=1e-4)
        a = policy.backoff(2, np.random.default_rng(5))
        b = policy.backoff(2, np.random.default_rng(5))
        assert a == b
        assert 1e-3 <= a <= 1e-3 + 1e-4

    def test_allows_counts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)


class TestOtherPolicies:
    def test_hedge_validation(self):
        with pytest.raises(ConfigError):
            HedgePolicy(delay=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(max_hedges=0)

    def test_breaker_validation(self):
        with pytest.raises(ConfigError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerPolicy(reset_timeout=0.0)

    def test_admission_sheds_on_queue_length(self):
        policy = AdmissionPolicy(max_queue=4)
        assert not policy.sheds(4)
        assert policy.sheds(5)

    def test_admission_sheds_on_deadline(self):
        policy = AdmissionPolicy(deadline=10e-3, service_time_estimate=1e-3)
        assert not policy.sheds(10)
        assert policy.sheds(11)

    def test_admission_deadline_needs_estimate(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(deadline=10e-3)

    def test_resilience_timeout_validation(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy(timeout=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED and breaker.allow(0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout=1.0)
        )
        breaker.record_failure(now=0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.5)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1.6)  # only one probe at a time

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout=1.0)
        )
        breaker.record_failure(now=0.0)
        assert breaker.allow(2.0)
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow(2.1)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=5, reset_timeout=1.0)
        )
        for _ in range(5):
            breaker.record_failure(now=0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(now=1.5)
        assert breaker.state == OPEN
        assert not breaker.allow(2.0)
        assert breaker.opens == 2
