"""Dispatcher-level resilience: timeouts with real cancellation,
retries under budget, hedging, circuit breaking, and load shedding."""

import pytest

from repro.resilience import (
    OPEN,
    AdmissionPolicy,
    BreakerPolicy,
    HedgePolicy,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.service import Request
from repro.topology import NodeOp, PathNode, PathTree

from ..topology.conftest import build_instance, build_world


def submit_with(dispatcher, sim, policy, n=1, spacing=0.0, at=0.0):
    done = []
    for i in range(n):
        req = Request(created_at=at + i * spacing)
        sim.schedule_at(
            req.created_at, dispatcher.submit, req, done.append,
            "client", "client", policy,
        )
    return done


def assert_quiescent(deployment):
    """After a drained run nothing may still hold a resource — the
    cancellation-conservation invariant."""
    for inst in deployment.all_instances:
        assert inst.pending_dispatch == 0, inst.name
        assert inst.queued_jobs == 0, inst.name
        assert inst.cores.free_count == len(inst.cores), inst.name
    for pool in deployment.pools:
        for conn in pool.connections:
            assert conn.outstanding == 0, conn.name
            assert not conn.blocked, conn.name


class TestTimeout:
    def test_slow_request_times_out(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=10e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = submit_with(
            dispatcher, sim, ResiliencePolicy(timeout=2e-3)
        )
        sim.run()
        assert done[0].outcome == "timeout"
        assert done[0].latency == pytest.approx(2e-3)
        assert dispatcher.requests_timed_out == 1
        assert dispatcher.requests_completed == 0

    def test_fast_request_unaffected(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = submit_with(
            dispatcher, sim, ResiliencePolicy(timeout=50e-3)
        )
        sim.run()
        assert done[0].outcome == "ok"
        assert done[0].ok

    def test_outcome_exceptions_map(self, sim, network):
        from repro.errors import RequestTimeout

        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=10e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = submit_with(dispatcher, sim, ResiliencePolicy(timeout=1e-3))
        sim.run()
        with pytest.raises(RequestTimeout):
            done[0].raise_for_outcome()


class TestCancellationConservesResources:
    """The property test: whatever mix of timeouts, hedges, and blocking
    ops a run produces, draining the simulator leaves every core,
    queue slot, and connection back at idle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("pool_size", [1, 2])
    def test_timeout_storm_leaves_no_residue(
        self, network, pool_size, seed
    ):
        from repro.engine import Simulator

        sim = Simulator(seed=seed)
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=3e-3, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "db0", "node1",
                           service_time=4e-3, tier="db")
        )
        deployment.set_pool("web", pool_size)
        deployment.set_pool("db", pool_size)
        # http1.1-style blocking makes cancellation reclaim blocks too.
        tree = PathTree().chain(
            PathNode("web", "web",
                     on_enter=NodeOp.block(), on_leave=NodeOp.unblock()),
            PathNode("db", "db"),
        )
        dispatcher.add_tree(tree)
        rng = sim.random.stream("test")
        # Base chain latency ~7ms; queued requests blow the deadline.
        policy = ResiliencePolicy(timeout=9e-3)
        done = []
        t = 0.0
        for _ in range(40):
            t += float(rng.uniform(0.0, 2e-3))
            req = Request(created_at=t)
            sim.schedule_at(
                t, dispatcher.submit, req, done.append,
                "client", "client", policy,
            )
        sim.run()
        assert len(done) == 40
        assert dispatcher.requests_timed_out > 0  # storm actually hit
        assert dispatcher.requests_completed > 0
        assert_quiescent(deployment)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hedge_cancel_leaves_no_residue(self, network, seed):
        from repro.engine import Simulator

        sim = Simulator(seed=seed)
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=20e-3, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "web1", "node1",
                           service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        policy = ResiliencePolicy(hedge=HedgePolicy(delay=3e-3))
        done = submit_with(dispatcher, sim, policy, n=10, spacing=5e-3)
        sim.run()
        assert all(r.outcome == "ok" for r in done)
        assert dispatcher.hedges_issued > 0
        assert_quiescent(deployment)


class TestRetry:
    def two_replica_world(self, sim, network, slow=50e-3, fast=1e-3):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=slow, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "web1", "node1",
                           service_time=fast, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        return deployment, dispatcher

    def test_retry_rescues_timed_out_attempt(self, sim, network):
        _, dispatcher = self.two_replica_world(sim, network)
        policy = ResiliencePolicy(
            timeout=10e-3,
            retry=RetryPolicy(max_attempts=2, backoff_base=1e-3, jitter=0.0),
        )
        # Round-robin sends attempt 1 to the slow replica (times out)
        # and the retry to the fast one.
        done = submit_with(dispatcher, sim, policy)
        sim.run()
        assert done[0].outcome == "ok"
        assert done[0].attempts == 2
        assert dispatcher.retries_issued == 1
        # Latency spans the whole request including the failed attempt.
        assert done[0].latency > 10e-3

    def test_attempts_exhausted_resolves_timeout(self, sim, network):
        _, dispatcher = self.two_replica_world(
            sim, network, slow=50e-3, fast=50e-3
        )
        policy = ResiliencePolicy(
            timeout=5e-3,
            retry=RetryPolicy(max_attempts=3, backoff_base=1e-3, jitter=0.0),
        )
        done = submit_with(dispatcher, sim, policy)
        sim.run()
        assert done[0].outcome == "timeout"
        assert done[0].attempts == 3

    def test_budget_caps_retries(self, sim, network):
        _, dispatcher = self.two_replica_world(
            sim, network, slow=50e-3, fast=50e-3
        )
        budget = RetryBudget(ratio=0.0, min_tokens=1)
        policy = ResiliencePolicy(
            timeout=5e-3,
            retry=RetryPolicy(
                max_attempts=4, backoff_base=1e-3, jitter=0.0, budget=budget
            ),
        )
        done = submit_with(dispatcher, sim, policy, n=3, spacing=100e-3)
        sim.run()
        # One retry token for the whole client: only the first timeout
        # may retry; later requests fail without amplification.
        assert dispatcher.retries_issued == 1
        assert [r.outcome for r in done] == ["timeout"] * 3
        assert budget.retries == 1


class TestHedging:
    def test_hedge_wins_race_and_cancels_loser(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=50e-3, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "web1", "node1",
                           service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        policy = ResiliencePolicy(hedge=HedgePolicy(delay=5e-3))
        done = submit_with(dispatcher, sim, policy)
        sim.run()
        assert done[0].outcome == "ok"
        # Finished via the hedge: ~5ms delay + 1ms service + hops,
        # far below the primary's 50ms.
        assert done[0].latency < 10e-3
        assert dispatcher.hedges_issued == 1
        assert dispatcher.attempts_launched == 2
        assert dispatcher.requests_completed == 1  # resolved exactly once

    def test_fast_primary_never_hedges(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        policy = ResiliencePolicy(hedge=HedgePolicy(delay=20e-3))
        done = submit_with(dispatcher, sim, policy)
        sim.run()
        assert done[0].outcome == "ok"
        assert dispatcher.hedges_issued == 0
        assert dispatcher.attempts_launched == 1


class TestCircuitBreaker:
    def test_breaker_opens_on_dead_service_and_recovers(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        web = build_instance(sim, cluster, "web0", "node0",
                             service_time=1e-3, tier="web")
        deployment.add_instance(web)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        web.crash()
        policy = ResiliencePolicy(
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=50e-3)
        )
        done = submit_with(dispatcher, sim, policy, n=4, spacing=1e-3)
        sim.schedule_at(20e-3, web.recover)
        # After recovery + reset_timeout the probe closes the breaker.
        late = submit_with(dispatcher, sim, policy, n=1, at=80e-3)
        sim.run()
        assert [r.outcome for r in done] == ["failed"] * 4
        breaker = dispatcher.breaker("client", "web")
        assert breaker is not None
        assert breaker.opens >= 1
        assert late[0].outcome == "ok"

    def test_open_breaker_fails_fast(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        web = build_instance(sim, cluster, "web0", "node0",
                             service_time=1e-3, tier="web")
        deployment.add_instance(web)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        web.crash()
        policy = ResiliencePolicy(
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=1.0)
        )
        submit_with(dispatcher, sim, policy, n=1)
        sim.run()
        assert dispatcher.breaker("client", "web").state == OPEN
        # Recover the instance but keep the breaker open: requests still
        # fail fast without touching the service.
        web.recover()
        done = submit_with(dispatcher, sim, policy, n=1, at=sim.now + 1e-3)
        sim.run()
        assert done[0].outcome == "failed"
        assert web.jobs_completed == 0


class TestAdmission:
    def test_sheds_over_queue_limit(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=10e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        policy = ResiliencePolicy(admission=AdmissionPolicy(max_queue=0))
        done = submit_with(dispatcher, sim, policy, n=2, spacing=1e-3)
        sim.run()
        outcomes = sorted(r.outcome for r in done)
        assert outcomes == ["ok", "shed"]
        assert dispatcher.requests_shed == 1
        shed = next(r for r in done if r.outcome == "shed")
        assert shed.latency == pytest.approx(0.0)

    def test_fallback_tree_serves_degraded(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=10e-3, tier="web")
        )
        cheap = build_instance(sim, cluster, "cache0", "node1",
                               service_time=1e-4, tier="cache")
        deployment.add_instance(cheap)
        dispatcher.add_tree(
            PathTree("full").chain(PathNode("web", "web"))
        )
        dispatcher.add_fallback_tree(
            PathTree("cheap").chain(PathNode("cache", "cache"))
        )
        policy = ResiliencePolicy(
            admission=AdmissionPolicy(max_queue=0, fallback_tree="cheap")
        )
        done = submit_with(dispatcher, sim, policy, n=2, spacing=1e-3)
        sim.run()
        assert [r.outcome for r in done] == ["ok", "ok"]
        degraded = [r for r in done if r.metadata.get("degraded")]
        assert len(degraded) == 1
        assert dispatcher.fallbacks_served == 1
        assert cheap.jobs_completed == 1


class TestPartition:
    def test_partition_drops_messages_until_heal(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        network.partition("client", "node0")
        policy = ResiliencePolicy(timeout=5e-3)
        lost = submit_with(dispatcher, sim, policy, n=1)
        sim.schedule_at(10e-3, network.heal, "client", "node0")
        saved = submit_with(dispatcher, sim, policy, n=1, at=20e-3)
        sim.run()
        assert lost[0].outcome == "timeout"
        assert saved[0].outcome == "ok"
        assert dispatcher.messages_dropped >= 1
        assert_quiescent(deployment)
