"""Tests for the empirical histogram distribution and its file format."""

import json

import numpy as np
import pytest

from repro.distributions import Histogram
from repro.errors import DistributionError


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestValidation:
    def test_edges_must_outnumber_counts_by_one(self):
        with pytest.raises(DistributionError):
            Histogram([0, 1], [1, 2])

    def test_edges_must_increase(self):
        with pytest.raises(DistributionError):
            Histogram([0, 1, 1], [1, 1])

    def test_negative_counts_rejected(self):
        with pytest.raises(DistributionError):
            Histogram([0, 1, 2], [1, -1])

    def test_all_zero_counts_rejected(self):
        with pytest.raises(DistributionError):
            Histogram([0, 1, 2], [0, 0])

    def test_negative_times_rejected(self):
        with pytest.raises(DistributionError):
            Histogram([-1, 0, 1], [1, 1])

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            Histogram([0], [])


class TestSampling:
    def test_samples_within_support(self, rng):
        h = Histogram([0.0, 1.0, 2.0], [1, 1])
        samples = h.sample_many(rng, 5000)
        assert samples.min() >= 0.0 and samples.max() <= 2.0

    def test_mass_respected(self, rng):
        h = Histogram([0.0, 1.0, 2.0], [9, 1])
        samples = h.sample_many(rng, 50_000)
        low_fraction = np.mean(samples < 1.0)
        assert low_fraction == pytest.approx(0.9, abs=0.01)

    def test_mean_midpoint_formula(self):
        h = Histogram([0.0, 2.0, 4.0], [1, 1])
        assert h.mean() == pytest.approx(2.0)

    def test_scalar_and_vector_agree_statistically(self, rng):
        h = Histogram([0.0, 1.0], [1])
        scalar = np.array([h.sample(rng) for _ in range(5000)])
        assert 0.45 < scalar.mean() < 0.55


class TestPercentile:
    def test_median_of_uniform_bin(self):
        h = Histogram([0.0, 1.0], [1])
        assert h.percentile(0.5) == pytest.approx(0.5)

    def test_extremes(self):
        h = Histogram([0.0, 1.0, 3.0], [1, 1])
        assert h.percentile(0.0) == pytest.approx(0.0)
        assert h.percentile(1.0) == pytest.approx(3.0)

    def test_out_of_range_rejected(self):
        h = Histogram([0.0, 1.0], [1])
        with pytest.raises(DistributionError):
            h.percentile(1.5)


class TestFromSamples:
    def test_roundtrip_statistics(self, rng):
        raw = rng.exponential(0.01, size=20_000)
        h = Histogram.from_samples(raw, bins=128)
        resampled = h.sample_many(rng, 20_000)
        assert np.mean(resampled) == pytest.approx(np.mean(raw), rel=0.05)

    def test_degenerate_single_value(self, rng):
        h = Histogram.from_samples([0.005, 0.005, 0.005])
        assert h.sample(rng) == pytest.approx(0.005, rel=1e-3)

    def test_no_samples_rejected(self):
        with pytest.raises(DistributionError):
            Histogram.from_samples([])


class TestFileFormat:
    def test_load_with_unit_conversion(self, tmp_path):
        path = tmp_path / "svc.hist.json"
        path.write_text(
            json.dumps({"unit": "us", "edges": [0, 10, 20], "counts": [1, 1]})
        )
        h = Histogram.load(path)
        assert h.edges.tolist() == pytest.approx([0, 10e-6, 20e-6])

    def test_dump_load_roundtrip(self, tmp_path, rng):
        h = Histogram([0.0, 0.001, 0.002], [3, 7])
        path = tmp_path / "out.json"
        h.dump(path, unit="ms")
        again = Histogram.load(path)
        assert again.edges.tolist() == pytest.approx(h.edges.tolist())
        assert again.counts.tolist() == pytest.approx(h.counts.tolist())

    def test_unknown_unit_rejected(self):
        with pytest.raises(DistributionError):
            Histogram.from_dict({"unit": "parsec", "edges": [0, 1], "counts": [1]})

    def test_malformed_payload_rejected(self):
        with pytest.raises(DistributionError):
            Histogram.from_dict({"unit": "s"})
