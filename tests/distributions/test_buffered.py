"""Block-buffered sampling must be a pure transparency layer: the
value stream and the generator end state are bitwise-identical to
repeated scalar draws. These tests pin that contract for every
distribution family in the library — it is what lets the engine buffer
its hottest stochastic call sites without changing any seeded result.
"""

import numpy as np
import pytest

from repro.distributions import (
    BufferedSampler,
    Deterministic,
    Erlang,
    Exponential,
    FrequencyTable,
    Histogram,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    Uniform,
    Weibull,
)
from repro.errors import DistributionError

DISTRIBUTIONS = [
    Deterministic(2.5e-3),
    Exponential(1e-3),
    Uniform(1e-4, 5e-4),
    LogNormal(-7.0, 0.4),
    Pareto(1e-3, 2.5),
    Erlang(3, 2e-4),
    Weibull(1.7, 1e-3),
    Scaled(Exponential(1e-3), 1.3),
    Shifted(Exponential(1e-3), 5e-5),
    Mixture([Exponential(1e-3), Uniform(1e-4, 2e-4)], [0.7, 0.3]),
    Histogram([1e-4, 3e-4, 9e-4, 2e-3], [5, 3, 2]),
]


def _ids(dist):
    return type(dist).__name__


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=_ids)
class TestBitwiseEquivalence:
    def test_sample_matches_scalar_stream(self, dist):
        scalar_rng = np.random.default_rng(42)
        buffered_rng = np.random.default_rng(42)
        sampler = BufferedSampler(dist, buffered_rng, block=16)
        scalar = [dist.sample(scalar_rng) for _ in range(50)]
        buffered = [sampler.sample() for _ in range(50)]
        assert buffered == scalar

    def test_generator_end_state_matches(self, dist):
        scalar_rng = np.random.default_rng(7)
        buffered_rng = np.random.default_rng(7)
        sampler = BufferedSampler(dist, buffered_rng, block=8)
        for _ in range(16):  # exactly two full blocks
            dist.sample(scalar_rng)
            sampler.sample()
        assert (scalar_rng.bit_generator.state
                == buffered_rng.bit_generator.state)

    def test_take_matches_scalar_stream(self, dist):
        scalar_rng = np.random.default_rng(3)
        buffered_rng = np.random.default_rng(3)
        sampler = BufferedSampler(dist, buffered_rng, block=8)
        scalar = [dist.sample(scalar_rng) for _ in range(30)]
        # Mixed request sizes: within a block, across refills, and one
        # request (20) larger than the block itself.
        got = sampler.take(3) + sampler.take(7) + sampler.take(20)
        assert got == scalar


class TestBufferMechanics:
    def test_block_size_is_invisible(self):
        streams = [
            BufferedSampler(Exponential(1.0), np.random.default_rng(5), block=b)
            for b in (1, 2, 64, 1024)
        ]
        draws = [[s.sample() for _ in range(100)] for s in streams]
        assert draws[0] == draws[1] == draws[2] == draws[3]

    def test_take_zero(self):
        sampler = BufferedSampler(Exponential(1.0), np.random.default_rng(0))
        assert sampler.take(0) == []

    def test_take_negative_raises(self):
        sampler = BufferedSampler(Exponential(1.0), np.random.default_rng(0))
        with pytest.raises(DistributionError):
            sampler.take(-1)

    def test_bad_block_raises(self):
        with pytest.raises(DistributionError):
            BufferedSampler(Exponential(1.0), np.random.default_rng(0), block=0)

    def test_buffered_telemetry(self):
        sampler = BufferedSampler(
            Exponential(1.0), np.random.default_rng(0), block=10
        )
        assert sampler.buffered == 0
        sampler.sample()
        assert sampler.buffered == 9


class TestFrequencySampler:
    TABLE = FrequencyTable.single(Exponential(1e-3), 2.0e9)

    def test_matches_scalar_at_profiled_frequency(self):
        scalar_rng = np.random.default_rng(11)
        buffered_rng = np.random.default_rng(11)
        sampler = self.TABLE.make_sampler(buffered_rng, block=16)
        scalar = [self.TABLE.sample(scalar_rng, 2.0e9) for _ in range(40)]
        buffered = [sampler.sample(2.0e9) for _ in range(40)]
        assert buffered == scalar

    def test_matches_scalar_at_scaled_frequency(self):
        # 1 GHz on a 2 GHz profile: every draw is scaled 2x at serve time.
        scalar_rng = np.random.default_rng(12)
        buffered_rng = np.random.default_rng(12)
        sampler = self.TABLE.make_sampler(buffered_rng, block=16)
        scalar = [self.TABLE.sample(scalar_rng, 1.0e9) for _ in range(40)]
        buffered = [sampler.sample(1.0e9) for _ in range(40)]
        assert buffered == scalar

    def test_dvfs_transition_is_exact(self):
        # Interleave frequencies: a scalar caller draws from the same
        # stream whichever frequency is active, and so must the sampler —
        # the frequency change takes effect on the very next draw.
        scalar_rng = np.random.default_rng(13)
        buffered_rng = np.random.default_rng(13)
        sampler = self.TABLE.make_sampler(buffered_rng, block=8)
        freqs = [2.0e9, 2.0e9, 1.0e9, 2.0e9, 1.5e9, 1.0e9] * 5
        scalar = [self.TABLE.sample(scalar_rng, f) for f in freqs]
        buffered = [sampler.sample(f) for f in freqs]
        assert buffered == scalar

    def test_take_with_factor(self):
        scalar_rng = np.random.default_rng(14)
        buffered_rng = np.random.default_rng(14)
        sampler = self.TABLE.make_sampler(buffered_rng, block=8)
        scalar = [self.TABLE.sample(scalar_rng, 1.0e9) for _ in range(20)]
        assert sampler.take(20, 1.0e9) == scalar

    def test_nominal_default(self):
        table = FrequencyTable(
            {1.0e9: Exponential(2e-3), 2.0e9: Exponential(1e-3)}
        )
        scalar_rng = np.random.default_rng(15)
        buffered_rng = np.random.default_rng(15)
        sampler = table.make_sampler(buffered_rng)
        scalar = [table.sample(scalar_rng) for _ in range(10)]
        assert [sampler.sample() for _ in range(10)] == scalar

    def test_invalid_frequency_raises(self):
        sampler = self.TABLE.make_sampler(np.random.default_rng(0))
        with pytest.raises(DistributionError):
            sampler.sample(-1.0)
