"""Unit tests for parametric distributions."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)
from repro.errors import DistributionError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDeterministic:
    def test_sample_is_constant(self, rng):
        d = Deterministic(0.5)
        assert d.sample(rng) == 0.5
        assert d.mean() == 0.5

    def test_sample_many(self, rng):
        assert Deterministic(2.0).sample_many(rng, 4).tolist() == [2.0] * 4

    def test_zero_allowed(self, rng):
        assert Deterministic(0.0).sample(rng) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(DistributionError):
            Deterministic(-1.0)


class TestExponential:
    def test_mean_parameterisation(self, rng):
        d = Exponential(mean=0.001)
        samples = d.sample_many(rng, 200_000)
        assert np.mean(samples) == pytest.approx(0.001, rel=0.02)

    def test_mean_accessor(self):
        assert Exponential(3.0).mean() == 3.0

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(DistributionError):
            Exponential(0.0)

    def test_samples_nonnegative(self, rng):
        assert np.all(Exponential(1.0).sample_many(rng, 1000) >= 0)


class TestUniform:
    def test_bounds(self, rng):
        d = Uniform(0.2, 0.4)
        samples = d.sample_many(rng, 10_000)
        assert samples.min() >= 0.2 and samples.max() <= 0.4

    def test_mean(self):
        assert Uniform(1.0, 3.0).mean() == 2.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(DistributionError):
            Uniform(2.0, 1.0)

    def test_degenerate_interval(self, rng):
        assert Uniform(1.0, 1.0).sample(rng) == 1.0


class TestLogNormal:
    def test_from_mean_cv_recovers_mean(self, rng):
        d = LogNormal.from_mean_cv(mean=0.01, cv=0.5)
        assert d.mean() == pytest.approx(0.01, rel=1e-9)
        samples = d.sample_many(rng, 200_000)
        assert np.mean(samples) == pytest.approx(0.01, rel=0.02)

    def test_invalid_sigma(self):
        with pytest.raises(DistributionError):
            LogNormal(0.0, 0.0)


class TestPareto:
    def test_mean_formula(self):
        d = Pareto(scale=1.0, shape=2.0)
        assert d.mean() == 2.0

    def test_empirical_mean(self, rng):
        d = Pareto(scale=0.001, shape=3.0)
        samples = d.sample_many(rng, 400_000)
        assert np.mean(samples) == pytest.approx(d.mean(), rel=0.05)

    def test_heavy_tail_shape_rejected(self):
        with pytest.raises(DistributionError):
            Pareto(1.0, 1.0)

    def test_samples_at_least_scale(self, rng):
        samples = Pareto(0.5, 2.5).sample_many(rng, 1000)
        assert np.all(samples >= 0.5)


class TestErlang:
    def test_mean(self, rng):
        d = Erlang(k=4, mean=0.02)
        samples = d.sample_many(rng, 100_000)
        assert np.mean(samples) == pytest.approx(0.02, rel=0.02)

    def test_variance_shrinks_with_k(self, rng):
        loose = Erlang(k=1, mean=1.0).sample_many(rng, 50_000)
        tight = Erlang(k=16, mean=1.0).sample_many(rng, 50_000)
        assert np.var(tight) < np.var(loose)

    def test_k_validation(self):
        with pytest.raises(DistributionError):
            Erlang(k=0, mean=1.0)


class TestWeibull:
    def test_mean_formula(self, rng):
        d = Weibull(shape=2.0, scale=0.01)
        expected = 0.01 * math.gamma(1.5)
        samples = d.sample_many(rng, 200_000)
        assert np.mean(samples) == pytest.approx(expected, rel=0.02)
        assert d.mean() == pytest.approx(expected)


class TestMixture:
    def test_mean_is_weighted(self):
        d = Mixture([Deterministic(1.0), Deterministic(3.0)], [0.25, 0.75])
        assert d.mean() == pytest.approx(2.5)

    def test_empirical_split(self, rng):
        d = Mixture([Deterministic(0.0), Deterministic(1.0)], [0.3, 0.7])
        samples = np.array([d.sample(rng) for _ in range(20_000)])
        assert np.mean(samples) == pytest.approx(0.7, abs=0.02)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            Mixture([Deterministic(1.0)], [0.5])

    def test_length_mismatch(self):
        with pytest.raises(DistributionError):
            Mixture([Deterministic(1.0)], [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            Mixture([], [])


class TestCombinators:
    def test_scaled(self, rng):
        d = Deterministic(2.0).scaled(1.5)
        assert d.sample(rng) == 3.0
        assert d.mean() == 3.0

    def test_shifted(self, rng):
        d = Deterministic(2.0).shifted(0.5)
        assert d.sample(rng) == 2.5
        assert d.mean() == 2.5

    def test_scaled_vectorised(self, rng):
        d = Exponential(1.0).scaled(2.0)
        samples = d.sample_many(rng, 100_000)
        assert np.mean(samples) == pytest.approx(2.0, rel=0.03)

    def test_chained_combinators(self, rng):
        d = Deterministic(1.0).scaled(3.0).shifted(1.0)
        assert d.sample(rng) == 4.0
