"""Tests for frequency-dependent processing-time tables (DVFS model)."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, FrequencyTable
from repro.errors import DistributionError

GHZ = 1e9


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestExactEntries:
    def test_exact_frequency_uses_table_entry(self, rng):
        table = FrequencyTable(
            {2.6 * GHZ: Deterministic(1.0), 1.2 * GHZ: Deterministic(3.0)}
        )
        assert table.at(2.6 * GHZ).sample(rng) == 1.0
        assert table.at(1.2 * GHZ).sample(rng) == 3.0

    def test_nominal_is_highest_frequency(self, rng):
        table = FrequencyTable(
            {2.6 * GHZ: Deterministic(1.0), 1.2 * GHZ: Deterministic(3.0)}
        )
        assert table.sample(rng) == 1.0
        assert table.mean() == 1.0


class TestScaling:
    def test_half_frequency_doubles_compute_time(self, rng):
        table = FrequencyTable.single(Deterministic(1.0), 2.0 * GHZ)
        assert table.at(1.0 * GHZ).sample(rng) == pytest.approx(2.0)

    def test_compute_fraction_limits_scaling(self, rng):
        # 50% memory-bound: halving frequency adds only 50% to the time.
        table = FrequencyTable.single(
            Deterministic(1.0), 2.0 * GHZ, compute_fraction=0.5
        )
        assert table.at(1.0 * GHZ).sample(rng) == pytest.approx(1.5)

    def test_scaling_uses_nearest_profiled_point(self, rng):
        table = FrequencyTable(
            {2.0 * GHZ: Deterministic(1.0), 1.0 * GHZ: Deterministic(2.2)}
        )
        # 1.1 GHz is nearest to the 1.0 GHz profile; expect 2.2 * (1.0/1.1).
        assert table.at(1.1 * GHZ).sample(rng) == pytest.approx(2.2 / 1.1)

    def test_scale_factor_identity_at_profiled_point(self):
        table = FrequencyTable.single(Exponential(0.01), 2.6 * GHZ)
        assert table.scale_factor(2.6 * GHZ) == pytest.approx(1.0)


class TestValidation:
    def test_empty_table_rejected(self):
        with pytest.raises(DistributionError):
            FrequencyTable({})

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(DistributionError):
            FrequencyTable({0.0: Deterministic(1.0)})

    def test_bad_compute_fraction_rejected(self):
        with pytest.raises(DistributionError):
            FrequencyTable.single(Deterministic(1.0), GHZ, compute_fraction=1.5)

    def test_query_nonpositive_frequency_rejected(self):
        table = FrequencyTable.single(Deterministic(1.0), GHZ)
        with pytest.raises(DistributionError):
            table.at(0.0)

    def test_frequencies_sorted(self):
        table = FrequencyTable(
            {2.6 * GHZ: Deterministic(1.0), 1.2 * GHZ: Deterministic(2.0)}
        )
        assert table.frequencies == [1.2 * GHZ, 2.6 * GHZ]
