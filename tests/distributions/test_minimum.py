"""Distribution.minimum() — the support infimum the sharded core uses
as conservative lookahead. The contract: no draw is ever below it."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    Uniform,
    Weibull,
)


class TestExactMinima:
    def test_deterministic(self):
        assert Deterministic(0.5).minimum() == 0.5

    def test_uniform(self):
        assert Uniform(0.2, 0.9).minimum() == 0.2

    def test_pareto(self):
        assert Pareto(scale=1e-4, shape=2.0).minimum() == 1e-4

    def test_scaled(self):
        assert Scaled(Deterministic(2.0), 3.0).minimum() == 6.0

    def test_shifted(self):
        assert Shifted(Exponential(1.0), 0.25).minimum() == 0.25

    def test_mixture_min_over_positive_weights(self):
        mix = Mixture(
            [Deterministic(0.3), Deterministic(0.7)], [0.5, 0.5]
        )
        assert mix.minimum() == 0.3

    def test_mixture_ignores_zero_weight_components(self):
        mix = Mixture(
            [Deterministic(0.1), Deterministic(0.7)], [0.0, 1.0]
        )
        assert mix.minimum() == 0.7


class TestDefaultZero:
    @pytest.mark.parametrize("dist", [
        Exponential(1e-3),
        LogNormal(1e-3, 0.5),
        Erlang(3, 1e-3),
        Weibull(1.5, 1e-3),
    ])
    def test_unbounded_below_support_reports_zero(self, dist):
        assert dist.minimum() == 0.0


class TestContract:
    @pytest.mark.parametrize("dist", [
        Deterministic(0.5),
        Uniform(0.2, 0.9),
        Pareto(scale=1e-4, shape=2.0),
        Shifted(Exponential(1e-3), 2e-4),
        Scaled(Shifted(Exponential(1e-3), 1e-4), 2.0),
        Mixture([Uniform(0.1, 0.2), Deterministic(0.15)], [0.3, 0.7]),
        Exponential(1e-3),
        Erlang(3, 1e-3),
    ])
    def test_no_draw_below_minimum(self, dist):
        rng = np.random.default_rng(123)
        floor = dist.minimum()
        draws = dist.sample_many(rng, 2000)
        assert float(np.min(draws)) >= floor
