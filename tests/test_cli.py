"""Tests for the `python -m repro` CLI."""

import pytest

from repro.__main__ import main

from .config.conftest import spec_dir  # noqa: F401 (fixture reuse)


class TestRunCommand:
    def test_run_spec_directory(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests completed" in out
        assert "p99 (ms)" in out

    def test_run_with_realism(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--real"])
        assert code == 0
        assert "real-system surrogate" in capsys.readouterr().out

    def test_run_with_horizon(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--until", "0.5"])
        assert code == 0

    def test_missing_spec_dir_reports_error(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_spec_without_client_rejected(self, spec_dir, capsys):
        (spec_dir / "client.json").unlink()
        code = main(["run", str(spec_dir)])
        assert code == 2


class TestExperimentsCommand:
    def test_list(self, capsys):
        code = main(["experiments", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig8" in out
        assert "Table III" in out

    def test_run_dispatches_to_registry(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec("figX", "Figure X", "stub", lambda: "ran")
        monkeypatch.setitem(registry._BY_ID, "figX", cheap)
        code = main(["experiments", "run", "figX"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ran" in out

    def test_unknown_experiment_id(self, capsys):
        with pytest.raises(KeyError):
            main(["experiments", "run", "fig99"])
