"""Tests for the `python -m repro` CLI."""

from repro.__main__ import main

from .config.conftest import spec_dir  # noqa: F401 (fixture reuse)


class TestRunCommand:
    def test_run_spec_directory(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests ok" in out
        assert "p99 (ms)" in out
        # Fault-free runs keep the old shape: no error-outcome rows.
        assert "requests failed" not in out

    def test_run_surfaces_error_outcomes(self, spec_dir, capsys):
        (spec_dir / "faults.json").write_text(
            '{"faults": [{"at": 0.05, "kind": "crash",'
            ' "instance": "cache0"}]}'
        )
        code = main(["run", str(spec_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests ok" in out
        assert "requests failed" in out

    def test_run_with_realism(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--real"])
        assert code == 0
        assert "real-system surrogate" in capsys.readouterr().out

    def test_run_with_horizon(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--until", "0.5"])
        assert code == 0

    def test_missing_spec_dir_reports_error(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert len(err.strip().splitlines()) == 1  # one-line message

    def test_spec_without_client_rejected(self, spec_dir, capsys):
        (spec_dir / "client.json").unlink()
        code = main(["run", str(spec_dir)])
        assert code == 2


class TestExperimentsCommand:
    def test_list(self, capsys):
        code = main(["experiments", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig8" in out
        assert "Table III" in out

    def test_run_dispatches_to_registry(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec("figX", "Figure X", "stub", lambda: "ran")
        monkeypatch.setitem(registry._BY_ID, "figX", cheap)
        code = main(["experiments", "run", "figX"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ran" in out

    def test_run_forwards_seed_override(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        seen = {}

        def runner(seed=0):
            seen["seed"] = seed
            return "ran"

        cheap = ExperimentSpec("figY", "Figure Y", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, "figY", cheap)
        assert main(["experiments", "run", "figY", "--seed", "17"]) == 0
        assert seen["seed"] == 17
        capsys.readouterr()

    def test_run_forwards_jobs(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        seen = {}

        def runner(jobs=1):
            seen["jobs"] = jobs
            return "ran"

        cheap = ExperimentSpec("figZ", "Figure Z", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, "figZ", cheap)
        assert main(["experiments", "run", "figZ", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        capsys.readouterr()

    def test_jobs_not_forced_on_serial_runner(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec("figW", "Figure W", "stub", lambda: "ran")
        monkeypatch.setitem(registry._BY_ID, "figW", cheap)
        # A runner with no jobs parameter must still run under --jobs.
        assert main(["experiments", "run", "figW", "--jobs", "4"]) == 0
        capsys.readouterr()

    def test_unknown_experiment_id(self, capsys):
        code = main(["experiments", "run", "fig99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "fig99" in err
