"""Tests for the `python -m repro` CLI."""

from repro.__main__ import main

from .config.conftest import spec_dir  # noqa: F401 (fixture reuse)


class TestRunCommand:
    def test_run_spec_directory(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests ok" in out
        assert "p99 (ms)" in out
        # Fault-free runs keep the old shape: no error-outcome rows.
        assert "requests failed" not in out

    def test_run_surfaces_error_outcomes(self, spec_dir, capsys):
        (spec_dir / "faults.json").write_text(
            '{"faults": [{"at": 0.05, "kind": "crash",'
            ' "instance": "cache0"}]}'
        )
        code = main(["run", str(spec_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests ok" in out
        assert "requests failed" in out

    def test_run_with_realism(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--real"])
        assert code == 0
        assert "real-system surrogate" in capsys.readouterr().out

    def test_run_with_horizon(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--until", "0.5"])
        assert code == 0

    def test_missing_spec_dir_reports_error(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert len(err.strip().splitlines()) == 1  # one-line message

    def test_spec_without_client_rejected(self, spec_dir, capsys):
        (spec_dir / "client.json").unlink()
        code = main(["run", str(spec_dir)])
        assert code == 2


class TestExperimentsCommand:
    def test_list(self, capsys):
        code = main(["experiments", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig8" in out
        assert "Table III" in out

    def test_run_dispatches_to_registry(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec("figX", "Figure X", "stub", lambda: "ran")
        monkeypatch.setitem(registry._BY_ID, "figX", cheap)
        code = main(["experiments", "run", "figX"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ran" in out

    def test_run_forwards_seed_override(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        seen = {}

        def runner(seed=0):
            seen["seed"] = seed
            return "ran"

        cheap = ExperimentSpec("figY", "Figure Y", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, "figY", cheap)
        assert main(["experiments", "run", "figY", "--seed", "17"]) == 0
        assert seen["seed"] == 17
        capsys.readouterr()

    def test_run_forwards_jobs(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        seen = {}

        def runner(jobs=1):
            seen["jobs"] = jobs
            return "ran"

        cheap = ExperimentSpec("figZ", "Figure Z", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, "figZ", cheap)
        assert main(["experiments", "run", "figZ", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        capsys.readouterr()

    def test_jobs_not_forced_on_serial_runner(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec("figW", "Figure W", "stub", lambda: "ran")
        monkeypatch.setitem(registry._BY_ID, "figW", cheap)
        # A runner with no jobs parameter must still run under --jobs.
        assert main(["experiments", "run", "figW", "--jobs", "4"]) == 0
        capsys.readouterr()

    def test_unknown_experiment_id(self, capsys):
        code = main(["experiments", "run", "fig99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "fig99" in err


class TestDurableExperimentFlags:
    def _install(self, monkeypatch, exp_id, runner):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec(exp_id, "Figure T", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, exp_id, cheap)

    def test_run_dir_and_resume_forwarded(self, capsys, monkeypatch,
                                          tmp_path):
        seen = {}

        def runner(run_dir=None, resume=True):
            seen.update(run_dir=run_dir, resume=resume)
            return "ran"

        self._install(monkeypatch, "figT", runner)
        run_dir = tmp_path / "run"
        assert main([
            "experiments", "run", "figT",
            "--run-dir", str(run_dir), "--no-resume",
        ]) == 0
        assert seen == {"run_dir": str(run_dir), "resume": False}
        capsys.readouterr()

    def test_audit_forwarded(self, capsys, monkeypatch):
        seen = {}

        def runner(audit=False):
            seen["audit"] = audit
            return "ran"

        self._install(monkeypatch, "figU", runner)
        assert main(["experiments", "run", "figU", "--audit"]) == 0
        assert seen == {"audit": True}
        capsys.readouterr()

    def test_manifest_summary_printed(self, capsys, monkeypatch, tmp_path):
        import json

        run_dir = tmp_path / "run"

        def runner(run_dir=None, resume=True):
            # Stand-in for a durable sweep leaving a manifest behind.
            from pathlib import Path
            Path(run_dir).mkdir(parents=True, exist_ok=True)
            (Path(run_dir) / "manifest.json").write_text(json.dumps({
                "experiment": "figV", "status": "completed",
                "counts": {"ok": 3}, "resumed_points": 1,
                "wall_time_s": 0.5,
            }))
            return "ran"

        self._install(monkeypatch, "figV", runner)
        assert main([
            "experiments", "run", "figV", "--run-dir", str(run_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "run figV: completed" in out
        assert "3/3 points ok" in out
        assert "1 reused from journal" in out

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def runner():
            raise KeyboardInterrupt

        self._install(monkeypatch, "figK", runner)
        code = main(["experiments", "run", "figK"])
        assert code == 130
        err = capsys.readouterr().err
        assert "resume" in err


class TestObservabilityFlags:
    def _install(self, monkeypatch, exp_id, runner):
        from repro.experiments import registry
        from repro.experiments.registry import ExperimentSpec

        cheap = ExperimentSpec(exp_id, "Figure S", "stub", runner)
        monkeypatch.setitem(registry._BY_ID, exp_id, cheap)

    def test_run_with_slo_prints_verdicts(self, spec_dir, capsys):
        code = main([
            "run", str(spec_dir), "--until", "0.3", "--slo", "p99<1s",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "SLO verdicts" in out
        assert "p99<1s" in out

    def test_run_with_profile_prints_hotspots(self, spec_dir, capsys):
        code = main([
            "run", str(spec_dir), "--until", "0.3", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine profile:" in out
        assert "hotspots" in out

    def test_run_with_trace_prints_analytics(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--until", "0.3", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace analytics:" in out
        assert "tail attribution" in out
        assert "dependency graph" in out

    def test_run_without_observability_skips_report(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--until", "0.3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace analytics" not in out
        assert "SLO verdicts" not in out

    def test_slo_forwarded_to_supporting_runner(self, capsys, monkeypatch):
        seen = {}

        def runner(slo=None):
            seen["slo"] = slo
            return "ran"

        self._install(monkeypatch, "figS", runner)
        assert main([
            "experiments", "run", "figS",
            "--slo", "p99<5ms", "--slo", "avail>99.9%",
        ]) == 0
        assert seen == {"slo": ["p99<5ms", "avail>99.9%"]}
        capsys.readouterr()

    def test_slo_rejected_by_unsupporting_runner(self, capsys, monkeypatch):
        self._install(monkeypatch, "figNoSlo", lambda: "ran")
        code = main([
            "experiments", "run", "figNoSlo", "--slo", "p99<5ms",
        ])
        assert code == 2
        assert "does not support slo" in capsys.readouterr().err

    def test_bad_slo_spec_is_a_config_error(self, spec_dir, capsys):
        code = main(["run", str(spec_dir), "--slo", "p99>5ms"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_with_scrape_prints_timeline(self, spec_dir, capsys):
        code = main([
            "run", str(spec_dir), "--until", "0.3",
            "--scrape-interval", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "timeline series" in out
        assert "per-tier utilisation over sim-time" in out

    def test_scrape_artifact_written_to_trace_dir(self, spec_dir, capsys,
                                                  tmp_path):
        out_dir = tmp_path / "out"
        code = main([
            "run", str(spec_dir), "--until", "0.3",
            "--scrape-interval", "0.05", "--trace-dir", str(out_dir),
        ])
        assert code == 0
        assert "timeline artifact" in capsys.readouterr().out
        from repro.telemetry import load_timeline

        payload = load_timeline(out_dir / "timeseries.json")
        assert payload["series"]

    def test_scrape_forwarded_to_supporting_runner(self, capsys,
                                                   monkeypatch):
        seen = {}

        def runner(scrape_interval=None):
            seen["scrape_interval"] = scrape_interval
            return "ran"

        self._install(monkeypatch, "figScrape", runner)
        assert main([
            "experiments", "run", "figScrape", "--scrape-interval", "0.01",
        ]) == 0
        assert seen == {"scrape_interval": 0.01}
        capsys.readouterr()

    def test_scrape_rejected_by_unsupporting_runner(self, capsys,
                                                    monkeypatch):
        self._install(monkeypatch, "figNoScrape", lambda: "ran")
        code = main([
            "experiments", "run", "figNoScrape",
            "--scrape-interval", "0.01",
        ])
        assert code == 2
        assert "does not support scrape_interval" in \
            capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_over_exported_traces(self, spec_dir, capsys, tmp_path):
        trace_dir = tmp_path / "traces"
        assert main([
            "run", str(spec_dir), "--until", "0.3",
            "--trace-dir", str(trace_dir),
        ]) == 0
        capsys.readouterr()
        code = main([
            "analyze", str(trace_dir), "--percentiles", "50,99", "--top", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace analytics:" in out
        assert "p50 ms" in out and "p99 ms" in out
        assert "exemplars" in out

    def test_analyze_empty_dir_exits_2(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path)])
        assert code == 2
        assert "otlp" in capsys.readouterr().err

    def test_analyze_timeline_renders_tables(self, spec_dir, capsys,
                                             tmp_path):
        out_dir = tmp_path / "out"
        assert main([
            "run", str(spec_dir), "--until", "0.3",
            "--scrape-interval", "0.05", "--trace-dir", str(out_dir),
        ]) == 0
        capsys.readouterr()
        code = main(["analyze", str(out_dir), "--timeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-tier utilisation over sim-time" in out
        assert "client over sim-time" in out
        # The trace report still renders alongside the timelines.
        assert "trace analytics:" in out

    def test_analyze_timeline_without_traces_is_fine(self, capsys,
                                                     tmp_path):
        # A scraped-but-untraced run leaves only timeseries.json;
        # --timeline must render it instead of dying on missing OTLP.
        from repro.telemetry import timeline_payload, write_timeline

        write_timeline(tmp_path / "timeseries.json", timeline_payload(
            {"client/qps": {"times": [0.1, 0.2], "values": [5.0, 7.0]}},
            interval=0.1,
        ))
        code = main(["analyze", str(tmp_path), "--timeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "client over sim-time" in out
        assert "trace analytics" not in out

    def test_analyze_timeline_empty_dir_exits_2(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path), "--timeline"])
        assert code == 2
        assert "timeline" in capsys.readouterr().err
