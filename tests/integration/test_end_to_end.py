"""Cross-layer integration tests: conservation, determinism, and
agreement with queueing theory."""

import pytest

from repro.apps import social_network, three_tier, two_tier
from repro.distributions import Deterministic, Exponential
from repro.engine import Simulator
from repro.hardware import Cluster, Machine, NetworkFabric
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from repro.topology import Deployment, Dispatcher, PathNode, PathTree
from repro.workload import OpenLoopClient


def mm1_world(service_mean, seed=0):
    """A pure M/M/1 through the full stack with a zero-cost network."""
    sim = Simulator(seed=seed)
    network = NetworkFabric(
        propagation=Deterministic(0.0), loopback=Deterministic(0.0)
    )
    cluster = Cluster(network)
    machine = cluster.add_machine(Machine("node0", 1))
    cores = machine.allocate("svc", 1)
    stage = Stage("s", 0, SingleQueue(), base=Exponential(service_mean))
    selector = PathSelector([ExecutionPath(0, "p", [0])])
    svc = Microservice(
        "svc", sim, [stage], selector, cores,
        model=SimpleModel(), machine_name="node0", tier="svc",
    )
    deployment = Deployment()
    deployment.add_instance(svc)
    dispatcher = Dispatcher(sim, deployment, network)
    dispatcher.add_tree(PathTree().chain(PathNode("svc", "svc")))
    return sim, dispatcher


class TestQueueingTheoryAgreement:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mm1_mean_sojourn(self, rho):
        """The full stack must reproduce E[T] = E[S]/(1-rho) for M/M/1."""
        service_mean = 1e-3
        sim, dispatcher = mm1_world(service_mean, seed=17)
        qps = rho / service_mean
        client = OpenLoopClient(
            sim, dispatcher, arrivals=qps, max_requests=40_000
        )
        client.start()
        sim.run()
        expected = service_mean / (1.0 - rho)
        measured = client.latencies.mean(since=2.0)  # drop warmup
        assert measured == pytest.approx(expected, rel=0.08)


class TestConservation:
    @pytest.mark.parametrize(
        "build", [two_tier, three_tier, social_network]
    )
    def test_every_request_completes_after_drain(self, build):
        world = build(seed=4)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=400, max_requests=60
        )
        client.start()
        world.sim.run()
        assert client.requests_completed == client.requests_sent == 60
        assert world.dispatcher.requests_completed == 60
        # No job is stuck in any stage queue.
        for instance in world.deployment.all_instances:
            assert instance.queued_jobs == 0
        for netproc in world.deployment.netprocs.values():
            assert netproc.queued_jobs == 0

    def test_no_connection_left_blocked(self):
        world = two_tier(seed=4)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=2000, max_requests=200
        )
        client.start()
        world.sim.run()
        pools = world.deployment._pools.values()
        assert pools
        for pool in pools:
            for conn in pool.connections:
                assert not conn.blocked
                assert conn.outstanding == 0


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def run(seed):
            world = two_tier(seed=seed)
            client = OpenLoopClient(
                world.sim, world.dispatcher, arrivals=3000, max_requests=150
            )
            client.start()
            world.sim.run()
            return client.latencies.samples()[1].tolist()

        assert run(21) == run(21)

    def test_different_seeds_differ(self):
        def run(seed):
            world = two_tier(seed=seed)
            client = OpenLoopClient(
                world.sim, world.dispatcher, arrivals=3000, max_requests=50
            )
            client.start()
            world.sim.run()
            return client.latencies.samples()[1].tolist()

        assert run(1) != run(2)


class TestUtilisationAccounting:
    def test_busy_cores_track_offered_work(self):
        world = two_tier(seed=6)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=20_000, stop_at=0.2
        )
        client.start()
        world.sim.run(until=0.2)
        nginx = world.instance("nginx")
        util = nginx.utilization(now=0.2)
        # ~20k x ~135us over 8 cores ~ 0.33 utilisation.
        assert 0.15 < util < 0.6

    def test_idle_world_has_zero_utilisation(self):
        world = two_tier(seed=6)
        world.sim.run(until=0.1)
        assert world.instance("nginx").utilization(now=0.1) == 0.0
