"""Acceptance tests for the resilience experiments: retry-storm
metastability under overload and hedging on the straggler tier."""

import pytest

from repro.experiments.resilience import (
    measure_hedging,
    measure_retry_storm,
)


@pytest.fixture(scope="module")
def storm():
    """One shared overload sweep (duration trimmed for test runtime)."""
    return {
        mode: measure_retry_storm(mode, overload=1.2, duration=3.0, seed=0)
        for mode in ("no_retry", "unbudgeted", "budgeted")
    }


class TestRetryStorm:
    def test_unbudgeted_retries_collapse_goodput(self, storm):
        """At 1.2x saturation, retrying every timeout amplifies offered
        load and goodput collapses well below the no-retry baseline —
        the metastable failure mode."""
        baseline = storm["no_retry"].goodput
        assert baseline > 0
        assert storm["unbudgeted"].goodput < 0.8 * baseline
        assert storm["unbudgeted"].extra_attempts > 0.5

    def test_budget_prevents_the_storm(self, storm):
        """A 5% retry budget caps amplification at ~the budget ratio and
        keeps goodput within 5% of the no-retry baseline."""
        baseline = storm["no_retry"].goodput
        budgeted = storm["budgeted"]
        assert budgeted.extra_attempts <= 0.10
        assert budgeted.goodput >= 0.95 * baseline

    def test_sweep_is_deterministic(self):
        a = measure_retry_storm("budgeted", duration=1.0, seed=3)
        b = measure_retry_storm("budgeted", duration=1.0, seed=3)
        assert (a.goodput, a.requests_ok, a.retries_issued) == (
            b.goodput, b.requests_ok, b.retries_issued,
        )


class TestHedging:
    @pytest.fixture(scope="class")
    def points(self):
        common = dict(replicas=100, slow_count=1, slow_factor=10.0,
                      qps=100.0, num_requests=2000, seed=0)
        return (
            measure_hedging(None, **common),
            measure_hedging(2e-3, **common),
        )

    def test_hedging_cuts_p99(self, points):
        """On a 100-replica tier with one 10x straggler, a 2 ms hedge
        cuts p99 by at least 30%."""
        baseline, hedged = points
        assert hedged.p99 <= 0.7 * baseline.p99

    def test_extra_load_is_bounded(self, points):
        _, hedged = points
        assert hedged.extra_load <= 0.10
        assert hedged.hedges_issued > 0

    def test_all_requests_complete(self, points):
        baseline, hedged = points
        assert baseline.requests == 2000
        assert hedged.requests == 2000

    def test_median_unharmed(self, points):
        """Hedging targets the tail; the median must not regress
        noticeably."""
        baseline, hedged = points
        assert hedged.p50 <= baseline.p50 * 1.1
