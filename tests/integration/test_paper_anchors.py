"""Regression locks on the paper's text-stated anchors.

These are the quantities the paper commits to in prose (not just in
plot pixels); a calibration change that silently moves one of them
should fail loudly here. Windows are kept short, so thresholds carry
slack around the nominal anchor.
"""

import pytest

from repro.apps import load_balanced, three_tier, thrift_echo, two_tier
from repro.experiments import measure_at_load


def point(build, qps, **kw):
    return measure_at_load(build, qps, duration=0.25, warmup=0.07, **kw)


class TestLoadBalancingAnchors:
    """SSIV-B: saturation 35k/70k/~120k for scale-out 4/8/16."""

    def test_lb4_sustains_35k(self):
        p = point(load_balanced, 35_000, scale_out=4)
        assert not p.saturated
        assert p.p99 < 10e-3

    def test_lb4_fails_past_40k(self):
        p = point(load_balanced, 41_000, scale_out=4)
        assert p.saturated or p.p99 > 10e-3

    def test_lb8_sustains_70k(self):
        p = point(load_balanced, 70_000, scale_out=8)
        assert not p.saturated
        assert p.p99 < 10e-3

    def test_lb16_sublinear_ceiling(self):
        ok = point(load_balanced, 115_000, scale_out=16)
        assert not ok.saturated and ok.p99 < 10e-3
        over = point(load_balanced, 132_000, scale_out=16)
        assert over.saturated or over.p99 > 10e-3


class TestThriftAnchors:
    """SSIV-C: saturates beyond 50 kQPS; low-load latency < 100 us."""

    def test_sustains_50k(self):
        p = point(thrift_echo, 50_000)
        assert not p.saturated
        assert p.p99 < 5e-3

    def test_low_load_under_100us(self):
        p = point(thrift_echo, 5_000)
        assert p.p50 < 100e-6

    def test_fails_by_65k(self):
        p = point(thrift_echo, 65_000)
        assert p.saturated or p.p99 > 5e-3


class TestTierScalingAnchors:
    """SSIV-A: 2-tier saturation follows NGINX processes; the 3-tier
    app is disk-bound far below the 2-tier."""

    def test_two_tier_8p_roughly_doubles_4p(self):
        p8 = point(two_tier, 58_000, nginx_processes=8, memcached_threads=2)
        p4 = point(two_tier, 29_000, nginx_processes=4, memcached_threads=2)
        assert not p8.saturated and p8.p99 < 5e-3
        assert not p4.saturated and p4.p99 < 5e-3

    def test_memcached_threads_do_not_move_saturation(self):
        plenty = point(two_tier, 55_000, nginx_processes=8, memcached_threads=4)
        scarce = point(two_tier, 55_000, nginx_processes=8, memcached_threads=1)
        assert not plenty.saturated
        assert not scarce.saturated
        # Both pre-knee; the thread count costs at most tail, not capacity.
        assert scarce.throughput == pytest.approx(plenty.throughput, rel=0.05)

    def test_three_tier_disk_bound(self):
        ok = point(three_tier, 9_000)
        assert not ok.saturated and ok.p99 < 40e-3
        over = point(three_tier, 16_000)
        assert over.saturated or over.p99 > 40e-3
