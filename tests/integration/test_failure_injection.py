"""Failure-injection tests: degraded components must produce the
degradations queueing theory predicts — and nothing must wedge."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, Pareto
from repro.engine import Simulator
from repro.hardware import NetworkFabric
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient

from ..topology.conftest import build_instance, build_world


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def network():
    return NetworkFabric(
        propagation=Deterministic(10e-6), loopback=Deterministic(1e-6)
    )


class TestStragglerReplica:
    def build_lb(self, sim, network, policy):
        cluster, deployment, dispatcher = build_world(sim, network, machines=3)
        # One replica is 20x slower than the other two.
        for i, service_time in enumerate([1e-4, 1e-4, 2e-3]):
            deployment.add_instance(
                build_instance(
                    sim, cluster, f"web{i}", f"node{i}",
                    service_time=service_time, tier="web",
                )
            )
        deployment.set_balancer("web", policy)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        client = OpenLoopClient(sim, dispatcher, arrivals=2000, stop_at=0.5)
        client.start()
        sim.run(until=1.5)
        return client, deployment

    def test_round_robin_feeds_the_straggler(self, sim, network):
        client, deployment = self.build_lb(sim, network, "round_robin")
        straggler = deployment.instances("web")[2]
        # RR keeps sending 1/3 of traffic to the slow replica; at 666
        # QPS x 2ms it is saturated and drags p99 up.
        assert straggler.jobs_accepted > 250
        assert client.latencies.p99(since=0.2) > 2e-3

    def test_least_outstanding_routes_around_it(self, sim, network):
        rr_client, _ = self.build_lb(sim, network, "round_robin")
        sim2, net2 = Simulator(seed=0), NetworkFabric(
            propagation=Deterministic(10e-6), loopback=Deterministic(1e-6)
        )
        lo_client, lo_deployment = TestStragglerReplica.build_lb(
            self, sim2, net2, "least_outstanding"
        )
        # The adaptive policy sheds load off the straggler...
        straggler = lo_deployment.instances("web")[2]
        healthy = lo_deployment.instances("web")[0]
        assert straggler.jobs_accepted < healthy.jobs_accepted
        # ...and achieves a better tail than round-robin.
        assert lo_client.latencies.p99(since=0.2) < rr_client.latencies.p99(
            since=0.2
        )


class TestHeavyTailedService:
    def test_pareto_service_separates_tail_from_median(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        cores = cluster.machine("node0").allocate("svc0", 4)
        stage = Stage(
            "work", 0, SingleQueue(), base=Pareto(scale=50e-6, shape=1.5)
        )
        svc = Microservice(
            "svc0", sim, [stage],
            PathSelector([ExecutionPath(0, "p", [0])]),
            cores, model=SimpleModel(), machine_name="node0", tier="svc",
        )
        deployment.add_instance(svc)
        dispatcher.add_tree(PathTree().chain(PathNode("svc", "svc")))
        client = OpenLoopClient(sim, dispatcher, arrivals=2000, stop_at=1.0)
        client.start()
        sim.run(until=3.0)
        lat = client.latencies
        assert lat.p99(since=0.2) > 5 * lat.p50(since=0.2)


class TestBurstRecovery:
    def test_backlog_drains_after_burst(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-4, cores=1, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        # Burst at 3x capacity for 0.1s, then silence.
        burst = OpenLoopClient(
            sim, dispatcher, arrivals=30_000, stop_at=0.1, name="burst"
        )
        burst.start()
        sim.run()
        assert burst.requests_completed == burst.requests_sent
        web = deployment.instances("web")[0]
        assert web.queued_jobs == 0
        # Recovery time ~ backlog x service time beyond the burst end.
        assert sim.now > 0.15

    def test_latency_recovers_to_baseline_after_burst(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-4, cores=1, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        from repro.workload import StepPattern

        pattern = StepPattern([(0.0, 30_000), (0.1, 500)])
        client = OpenLoopClient(sim, dispatcher, arrivals=pattern, stop_at=2.0)
        client.start()
        sim.run(until=2.5)
        late = client.latencies.mean(since=1.5)
        assert late < 5e-4  # back to ~service time + network


class TestPartialConnectionOutage:
    def test_stuck_connection_does_not_block_the_rest(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-4, tier="web")
        )
        deployment.set_pool("web", 4)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        # Wedge one pool connection with a foreign block that nothing
        # will ever release (a hung peer).
        web = deployment.instances("web")[0]
        pool = deployment.pool_between("client", web)
        pool.connections[0].block(request_id=10**9)
        client = OpenLoopClient(sim, dispatcher, arrivals=1000, stop_at=0.2)
        client.start()
        sim.run(until=5.0)
        # Requests routed to the wedged connection stall; the other 3/4
        # complete normally.
        assert client.requests_completed >= client.requests_sent * 0.7
        assert client.requests_completed < client.requests_sent
