"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bighouse import simulate_ggk_instance
from repro.distributions import Deterministic, Exponential, Histogram
from repro.engine import Event, EventQueue, RandomStreams, Simulator
from repro.hardware import DvfsLadder, GHZ
from repro.power.buckets import no_more_relaxed
from repro.service import Connection
from repro.telemetry import LatencyRecorder
from repro.workload import DiurnalPattern

finite_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestEventQueueProperties:
    @given(st.lists(finite_times, min_size=1, max_size=200))
    def test_pops_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(Event(t, lambda: None))
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(
        st.lists(finite_times, min_size=2, max_size=100),
        st.data(),
    )
    def test_cancellation_removes_exactly_those_events(self, times, data):
        q = EventQueue()
        events = [q.push(Event(t, lambda: None)) for t in times]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(events) - 1), max_size=len(events))
        )
        for idx in to_cancel:
            q.cancel(events[idx])
        survivors = []
        while q:
            survivors.append(q.pop())
        expected = [e for i, e in enumerate(events) if i not in to_cancel]
        assert sorted(s.seq for s in survivors) == sorted(
            e.seq for e in expected
        )


class TestSimulatorProperties:
    @given(st.lists(finite_times, min_size=1, max_size=100))
    def test_clock_is_monotonic_over_any_schedule(self, delays):
        sim = Simulator()
        observed = []
        for d in delays:
            sim.schedule(d, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.events_processed == len(delays)


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(min_value=1e-9, max_value=1e3,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=500,
        )
    )
    def test_samples_stay_within_support(self, raw):
        h = Histogram.from_samples(raw, bins=16)
        rng = np.random.default_rng(0)
        samples = h.sample_many(rng, 500)
        assert samples.min() >= h.edges[0] - 1e-12
        assert samples.max() <= h.edges[-1] + 1e-12

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=20, unique=True,
        ).map(sorted),
    )
    def test_percentile_is_monotone(self, quantiles):
        h = Histogram([0.0, 1.0, 2.0, 5.0], [3, 5, 2])
        values = [h.percentile(q) for q in quantiles]
        assert values == sorted(values)


class TestLatencyRecorderProperties:
    @given(
        st.lists(
            st.tuples(finite_times,
                      st.floats(min_value=0, max_value=1e3,
                                allow_nan=False, allow_infinity=False)),
            min_size=1, max_size=300,
        )
    )
    def test_percentiles_bounded_by_extremes(self, samples):
        rec = LatencyRecorder()
        for t, v in samples:
            rec.record(t, v)
        values = [v for _, v in samples]
        assert min(values) <= rec.percentile(50) <= max(values)
        assert rec.percentile(0) == pytest.approx(min(values))
        assert rec.percentile(100) == pytest.approx(max(values))

    @given(
        st.lists(
            st.tuples(finite_times,
                      st.floats(min_value=0, max_value=1e3,
                                allow_nan=False, allow_infinity=False)),
            min_size=1, max_size=200,
        ),
        finite_times,
    )
    def test_window_counts_partition(self, samples, split):
        rec = LatencyRecorder()
        for t, v in samples:
            rec.record(t, v)
        before = rec.count(0.0, split)
        after = rec.count(split, None) if rec.count(split, None) else 0
        # Samples exactly at the split boundary may be counted in both
        # windows (closed intervals); the partition can't lose samples.
        assert before + after >= len(samples)


class TestConnectionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=50, unique=True))
    def test_block_handover_is_fifo(self, request_ids):
        conn = Connection()
        for rid in request_ids:
            conn.block(rid)
        served = []
        while conn.blocked:
            served.append(conn.holder)
            conn.unblock(conn.holder)
        assert served == request_ids


class TestDvfsProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0,
                           allow_nan=False), min_size=1, max_size=20),
        st.floats(min_value=0.01, max_value=20.0, allow_nan=False),
    )
    def test_clamp_is_idempotent_and_in_ladder(self, freqs_ghz, query_ghz):
        ladder = DvfsLadder([f * GHZ for f in freqs_ghz])
        snapped = ladder.clamp(query_ghz * GHZ)
        assert snapped in ladder
        assert ladder.clamp(snapped) == snapped
        assert ladder.min <= snapped <= ladder.max


class TestNoMoreRelaxedProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                 min_size=1, max_size=6)
    )
    def test_equal_tuple_is_never_admissible(self, values):
        t = tuple(values)
        assert not no_more_relaxed(t, t)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
                 min_size=1, max_size=6)
    )
    def test_uniformly_tighter_is_always_admissible(self, values):
        failing = tuple(values)
        candidate = tuple(v * 0.5 for v in values)
        assert no_more_relaxed(candidate, failing)


class TestGGkProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=0.8, allow_nan=False),
    )
    def test_sojourn_never_below_service_floor(self, servers, rho):
        service = Deterministic(1e-3)
        interarrival = Exponential(1e-3 / (rho * servers))
        latencies = simulate_ggk_instance(
            interarrival, service, servers, 2000, np.random.default_rng(0)
        )
        assert latencies.min() >= 1e-3 - 1e-12


class TestPatternProperties:
    @given(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_diurnal_rate_always_within_bounds(self, low, extra, t):
        pattern = DiurnalPattern(low=low, high=low + extra, period=60.0)
        rate = pattern.rate(t)
        assert low - 1e-6 <= rate <= low + extra + 1e-6


class TestRandomStreamProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_stream_reproducibility(self, seed, name):
        a = RandomStreams(seed).stream(name).random(3).tolist()
        b = RandomStreams(seed).stream(name).random(3).tolist()
        assert a == b
