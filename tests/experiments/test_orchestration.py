"""The orchestration studies: node-failure self-healing and SLO-gated
rollouts, end to end across seeds."""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    NodeFailurePoint,
    RolloutPoint,
    node_failure_experiment,
    registry,
    rollout_experiment,
)
from repro.experiments.loadsweep import measure_at_load
from repro.apps import thrift_echo
from repro.faults import FaultPlan

FAST = dict(qps=300.0, duration=2.0, fail_at=0.4)


class TestNodeFailure:
    def test_three_seeds_heal_without_losing_requests(self):
        points = node_failure_experiment(seeds=(1, 2, 3), audit=True, **FAST)
        assert len(points) == 3
        for p in points:
            # Conservation: every request sent was resolved.
            assert p.lost == 0
            assert p.requests_sent > 0
            # The reconciler replaced the dead replica...
            assert p.retirements >= 1
            assert p.reschedules >= 1
            assert p.survivors == 4
            # ...and goodput came back.
            assert p.recovered
            assert p.goodput_after > 0.8 * p.goodput_before

    def test_seeds_are_decorrelated_but_reproducible(self):
        a, b = node_failure_experiment(seeds=(1, 2), **FAST)
        assert a.requests_sent != b.requests_sent or a.goodput_after != b.goodput_after
        again, _ = node_failure_experiment(seeds=(1, 2), **FAST)
        assert a == again

    def test_external_fault_plan_replaces_default(self):
        plan = (
            FaultPlan()
            .fail_machine(0.4, "node1")
            .recover_machine(1.2, "node1")
        )
        (p,) = node_failure_experiment(
            seeds=(1,), fault_plan=plan, audit=True, **FAST
        )
        assert p.lost == 0
        assert p.retirements >= 1

    def test_durable_run_resumes_from_journal(self, tmp_path):
        first = node_failure_experiment(
            seeds=(1, 2), run_dir=tmp_path / "run", **FAST
        )
        again = node_failure_experiment(
            seeds=(1, 2), run_dir=tmp_path / "run", **FAST
        )
        assert again == first

    def test_parallel_identity(self):
        serial = node_failure_experiment(seeds=(1, 2), jobs=1, **FAST)
        fanned = node_failure_experiment(seeds=(1, 2), jobs=2, **FAST)
        assert fanned == serial


class TestRollout:
    def test_regressed_canary_rolls_back_on_every_seed(self):
        points = rollout_experiment(
            seeds=(1, 2, 3), regression=10.0, duration=3.5,
        )
        assert len(points) == 3
        for p in points:
            assert p.rolled_back
            assert p.breaches >= 1
            assert set(p.final_versions.values()) == {"v1"}
            assert p.requests_ok > 0

    def test_clean_candidate_promotes(self):
        (p,) = rollout_experiment(
            seeds=(1,), regression=1.0, duration=8.0, observe_for=1.0,
        )
        assert p.state == "rolled_out"
        assert set(p.final_versions.values()) == {"v2"}

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ReproError, match="strategy"):
            rollout_experiment(seeds=(1,), strategy="yolo")

    def test_durable_rollback_run(self, tmp_path):
        first = rollout_experiment(
            seeds=(1,), regression=10.0, duration=3.5,
            run_dir=tmp_path / "run",
        )
        again = rollout_experiment(
            seeds=(1,), regression=10.0, duration=3.5,
            run_dir=tmp_path / "run",
        )
        assert again == first
        assert first[0].rolled_back


class TestRegistry:
    def test_experiments_registered(self):
        node = registry.get("node_failure")
        roll = registry.get("rollout")
        assert node.supports_fault_plan
        assert not roll.supports_fault_plan

    def test_fault_plan_rejected_where_unsupported(self):
        spec = registry.get("rollout")
        with pytest.raises(ReproError, match="fault_plan"):
            spec.run(fault_plan=FaultPlan().crash(0.1, "web-0"))


class TestControlPlaneOffBitIdentity:
    def test_unmanaged_runs_unchanged_by_control_plane_use(self):
        """Exercising the control plane leaks no state into ordinary
        runs: an unmanaged measurement repeats bit-identically after a
        full managed world ran in the same process."""
        before = measure_at_load(thrift_echo, 2000, duration=0.2, warmup=0.05)
        node_failure_experiment(seeds=(1,), **FAST)
        after = measure_at_load(thrift_echo, 2000, duration=0.2, warmup=0.05)
        assert (before.mean, before.p99, before.completed) == (
            after.mean, after.p99, after.completed
        )
