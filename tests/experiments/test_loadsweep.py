"""Tests for the load-sweep harness and saturation detection."""

import pytest

from repro.apps import thrift_echo
from repro.errors import ReproError
from repro.experiments import (
    SweepPoint,
    load_latency_sweep,
    measure_at_load,
    saturation_load,
)


class TestMeasureAtLoad:
    def test_light_load_keeps_up(self):
        point = measure_at_load(thrift_echo, 2000, duration=0.2, warmup=0.05)
        assert not point.saturated
        assert point.throughput == pytest.approx(2000, rel=0.2)
        assert point.p99 >= point.p95 >= point.p50

    def test_overload_is_detected(self):
        point = measure_at_load(thrift_echo, 90_000, duration=0.2, warmup=0.05)
        assert point.saturated
        assert point.p99 > 1e-3

    def test_row_formatting(self):
        point = SweepPoint(1000, 990.0, 1e-3, 0.9e-3, 1.5e-3, 2e-3, 500)
        row = point.row()
        assert row[0] == 1000
        assert row[2] == pytest.approx(1.0)  # mean in ms

    def test_warmup_validation(self):
        with pytest.raises(ReproError):
            measure_at_load(thrift_echo, 100, duration=0.1, warmup=0.2)


class TestPointSlo:
    def test_point_carries_slo_verdicts(self):
        # A generous objective on a light load: monitored but met.
        point = measure_at_load(
            thrift_echo, 2000, duration=0.2, warmup=0.05, slo="p99<1s",
        )
        assert point.slo is not None
        assert set(point.slo) == {"p99<1s"}
        assert point.slo["p99<1s"]["breaches"] == 0
        assert point.slo_breaches == 0

    def test_overload_breaches_tight_slo(self):
        point = measure_at_load(
            thrift_echo, 90_000, duration=0.2, warmup=0.05, slo="p99<1ms",
        )
        assert point.slo_breaches >= 1

    def test_no_slo_leaves_field_none(self):
        point = measure_at_load(thrift_echo, 2000, duration=0.2, warmup=0.05)
        assert point.slo is None
        assert point.slo_breaches == 0


class TestSweepAndSaturation:
    def test_sweep_sorts_loads(self):
        points = load_latency_sweep(
            thrift_echo, [5000, 1000], duration=0.15, warmup=0.05
        )
        assert [p.offered_qps for p in points] == [1000, 5000]

    def test_latency_monotone_toward_saturation(self):
        points = load_latency_sweep(
            thrift_echo, [2000, 40_000, 60_000], duration=0.2, warmup=0.05
        )
        p99s = [p.p99 for p in points]
        assert p99s[2] > p99s[0]

    def test_saturation_load_picks_knee(self):
        points = [
            SweepPoint(1000, 1000, 1e-4, 1e-4, 2e-4, 3e-4, 100),
            SweepPoint(2000, 2000, 1e-4, 1e-4, 2e-4, 3e-4, 200),
            SweepPoint(3000, 2400, 1e-3, 1e-3, 2e-3, 5e-3, 240),  # saturated
        ]
        assert saturation_load(points) == 2000

    def test_saturation_load_with_p99_limit(self):
        points = [
            SweepPoint(1000, 1000, 1e-4, 1e-4, 2e-4, 3e-4, 100),
            SweepPoint(2000, 2000, 1e-3, 1e-3, 5e-3, 20e-3, 200),
        ]
        assert saturation_load(points, p99_limit=10e-3) == 1000

    def test_all_saturated_returns_zero(self):
        points = [SweepPoint(1000, 100, 1.0, 1.0, 1.0, 1.0, 10)]
        assert saturation_load(points) == 0.0


class TestSeedDerivation:
    def test_close_loads_are_decorrelated(self):
        # int(qps) truncation used to collapse 50.2 and 50.9 onto one
        # seed, making near-identical loads share every random draw.
        a = measure_at_load(thrift_echo, 50.2, duration=0.15, warmup=0.05)
        b = measure_at_load(thrift_echo, 50.9, duration=0.15, warmup=0.05)
        assert a.mean != b.mean

    def test_same_load_is_reproducible(self):
        a = measure_at_load(thrift_echo, 50.2, duration=0.15, warmup=0.05)
        b = measure_at_load(thrift_echo, 50.2, duration=0.15, warmup=0.05)
        assert (a.mean, a.p99, a.completed) == (b.mean, b.p99, b.completed)


class TestParallelSweep:
    def test_jobs_identity(self):
        # The headline determinism claim: fanning the sweep out across
        # processes changes nothing, bit for bit.
        loads = [1000, 2000, 3000, 4000]
        serial = load_latency_sweep(
            thrift_echo, loads, duration=0.15, warmup=0.05, jobs=1
        )
        fanned = load_latency_sweep(
            thrift_echo, loads, duration=0.15, warmup=0.05, jobs=2
        )
        assert fanned == serial

    def test_parallel_sweep_sorts_loads(self):
        points = load_latency_sweep(
            thrift_echo, [3000, 1000], duration=0.15, warmup=0.05, jobs=2
        )
        assert [p.offered_qps for p in points] == [1000, 3000]
