"""Regression tests for the registry's shard gating.

The original gating nested contradictory ``shards`` checks (an inner
``shards == 1`` arm inside the ``shards != 1`` branch); the untangled
rule is simple and tested here exhaustively: ``shards=1`` — the
default — is always accepted, parallelism (``shards >= 2``) needs a
shard-capable runner, and the supervisor knobs need parallelism first
and capability second.
"""

import pytest

from repro.errors import ReproError
from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec


def _plain_runner(**kwargs):
    return kwargs


def _sharded_runner(shards=1, shard_timeout=None, shard_restarts=None,
                    **kwargs):
    return dict(kwargs, shards=shards, shard_timeout=shard_timeout,
                shard_restarts=shard_restarts)


def _sharded_no_tuning_runner(shards=1, **kwargs):
    return dict(kwargs, shards=shards)


PLAIN = ExperimentSpec("plain", "-", "no shard support", _plain_runner)
SHARDED = ExperimentSpec("sharded", "-", "full shard support",
                         _sharded_runner)
NO_TUNING = ExperimentSpec("no_tuning", "-", "shards but no knobs",
                           _sharded_no_tuning_runner)


class TestShardGating:
    def test_explicit_shards_1_accepted_without_support(self):
        # shards=1 is the default single-core path: passing it
        # explicitly to a non-shard-capable experiment must work.
        assert PLAIN.run(shards=1) == {}

    def test_parallel_shards_rejected_without_support(self):
        with pytest.raises(ReproError, match="sharded parallel core"):
            PLAIN.run(shards=2)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_shards_rejected(self, bad):
        with pytest.raises(ReproError, match="must be >= 1"):
            SHARDED.run(shards=bad)

    def test_shards_forwarded_when_supported(self):
        assert SHARDED.run(shards=4)["shards"] == 4

    def test_shards_1_not_forced_on_capable_runner(self):
        # The runner's own default covers shards=1; the registry only
        # injects the knob when parallelism was requested.
        assert SHARDED.run(shards=1)["shards"] == 1


class TestSupervisorKnobGating:
    def test_tuning_needs_parallelism_first(self):
        with pytest.raises(ReproError, match="need --shards"):
            SHARDED.run(shards=1, shard_timeout=5.0)

    def test_tuning_needs_runner_capability_second(self):
        with pytest.raises(ReproError, match="supervisor knobs"):
            NO_TUNING.run(shards=2, shard_timeout=5.0)

    def test_tuning_forwarded_when_supported(self):
        result = SHARDED.run(shards=2, shard_timeout=5.0, shard_restarts=7)
        assert result["shard_timeout"] == 5.0
        assert result["shard_restarts"] == 7


def _scrapable_runner(scrape_interval=None, **kwargs):
    return dict(kwargs, scrape_interval=scrape_interval)


SCRAPABLE = ExperimentSpec("scrapable", "-", "scrape support",
                           _scrapable_runner)


class TestScrapeGating:
    def test_scrape_rejected_without_support(self):
        assert not PLAIN.supports_scrape
        with pytest.raises(ReproError, match="scrape_interval"):
            PLAIN.run(scrape_interval=0.01)

    def test_scrape_forwarded_when_supported(self):
        assert SCRAPABLE.supports_scrape
        assert SCRAPABLE.run(scrape_interval=0.01) == {
            "scrape_interval": 0.01
        }

    def test_scrape_off_never_forwarded(self):
        # Off is the default everywhere; the registry must not inject
        # the kwarg into runners that do not declare it.
        assert PLAIN.run() == {}


class TestRegisteredCapabilities:
    @pytest.mark.parametrize("exp_id", ["fig5", "fig12b", "fig14"])
    def test_ported_topologies_support_shards(self, exp_id):
        assert registry.get(exp_id).supports_shards

    @pytest.mark.parametrize("exp_id", ["fig5", "fig12b"])
    def test_adapter_experiments_support_lifted_knobs(self, exp_id):
        spec = registry.get(exp_id)
        assert spec.supports_shard_tuning
        assert spec.supports_slo
        assert spec.supports_trace_dir

    def test_serial_experiments_do_not(self):
        assert not registry.get("fig16").supports_shards

    @pytest.mark.parametrize("exp_id", ["fig5", "fig12b"])
    def test_adapter_experiments_support_scrape(self, exp_id):
        assert registry.get(exp_id).supports_scrape

    def test_fanout_port_refuses_scrape(self):
        # The hand-written fan-out runner declares no scrape support:
        # asking fig14 for a timeline is a loud error, never a
        # silently-unscraped run.
        spec = registry.get("fig14")
        assert not spec.supports_scrape
        with pytest.raises(ReproError, match="scrape_interval"):
            spec.run(scrape_interval=0.01)
