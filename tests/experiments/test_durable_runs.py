"""Durable experiment runs: kill-and-resume identity, fault-plan
interop, and the opt-in conservation audit."""

import json

import pytest

from repro.apps import thrift_echo
from repro.errors import AuditError, ReproError
from repro.experiments import load_latency_sweep, measure_at_load, registry
from repro.experiments.audit import audit_client
from repro.experiments.resilience import build_single_tier
from repro.experiments.tail_at_scale import tail_at_scale_sweep
from repro.faults import load_fault_plan
from repro.runner import RunStore
from repro.workload import OpenLoopClient

LOADS = [1000, 2000, 3000, 4000, 5000]
SWEEP = dict(duration=0.15, warmup=0.05)


class TestKillAndResume:
    """The acceptance scenario: a sweep killed at point k, re-run with
    resume=True, recomputes exactly n - k points and merges into a
    result identical to an uninterrupted run."""

    def test_resume_recomputes_only_missing_points(self, tmp_path):
        run_dir = tmp_path / "run"
        fresh = load_latency_sweep(thrift_echo, LOADS, jobs=1, **SWEEP)

        # "Killed at point 2": only the first two loads got journaled.
        load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, **SWEEP
        )
        assert len(RunStore(run_dir)) == 2

        resumed = load_latency_sweep(
            thrift_echo, LOADS, run_dir=run_dir, resume=True, **SWEEP
        )
        # Exactly n - k new journal entries, and a byte-identical merge
        # of journaled and recomputed points.
        assert len(RunStore(run_dir)) == len(LOADS)
        assert resumed == fresh
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "completed"
        assert manifest["resumed_points"] == 2

    def test_second_resume_is_pure_replay(self, tmp_path):
        run_dir = tmp_path / "run"
        first = load_latency_sweep(
            thrift_echo, LOADS[:3], run_dir=run_dir, **SWEEP
        )
        replay = load_latency_sweep(
            thrift_echo, LOADS[:3], run_dir=run_dir, resume=True, **SWEEP
        )
        assert replay == first
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == 3

    def test_resume_false_ignores_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        first = load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, **SWEEP
        )
        again = load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, resume=False, **SWEEP
        )
        assert again == first  # deterministic, so recompute == replay
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == 0

    def test_config_change_invalidates_keys(self, tmp_path):
        run_dir = tmp_path / "run"
        load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, **SWEEP
        )
        # A different measurement window must not reuse old points.
        load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, resume=True,
            duration=0.2, warmup=0.05,
        )
        assert len(RunStore(run_dir)) == 4
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == 0

    def test_scrape_joins_sweep_config(self, tmp_path):
        run_dir = tmp_path / "run"
        load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, **SWEEP
        )
        # Enabling scraping joins the config: journaled unscraped
        # points must not be silently reused without timelines.
        scraped = load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, resume=True,
            scrape_interval=0.05, **SWEEP
        )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == 0
        assert all(p.timeline is not None for p in scraped)
        # But scrape-off journal keys are unchanged from before the
        # scrape feature existed: the original points still resume.
        load_latency_sweep(
            thrift_echo, LOADS[:2], run_dir=run_dir, resume=True, **SWEEP
        )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == 2

    def test_tail_at_scale_resumes(self, tmp_path):
        run_dir = tmp_path / "run"
        grid = dict(
            cluster_sizes=(2, 4), slow_fractions=(0.0, 0.5),
            num_requests=40,
        )
        fresh = tail_at_scale_sweep(**grid)
        tail_at_scale_sweep(
            cluster_sizes=(2, 4), slow_fractions=(0.0,), num_requests=40,
            run_dir=run_dir,
        )
        assert len(RunStore(run_dir)) == 2
        resumed = tail_at_scale_sweep(run_dir=run_dir, resume=True, **grid)
        assert resumed == fresh
        assert len(RunStore(run_dir)) == 4


class TestFaultPlanInterop:
    """A seeded faults.json + parallel fan-out + resume must reproduce
    the serial fresh run bit-for-bit."""

    @pytest.fixture
    def plan(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"faults": [
            {"at": 0.06, "kind": "crash", "instance": "server_0",
             "disposition": "fail"},
            {"at": 0.10, "kind": "recover", "instance": "server_0"},
        ]}))
        return load_fault_plan(path)

    def test_fault_sweep_parallel_resume_identity(self, plan, tmp_path):
        loads = [500, 800, 1100]
        kwargs = dict(
            duration=0.15, warmup=0.02, fault_plan=plan, replicas=2,
        )
        fresh = load_latency_sweep(
            build_single_tier, loads, jobs=1, **kwargs
        )
        run_dir = tmp_path / "run"
        fanned = load_latency_sweep(
            build_single_tier, loads, jobs=2, run_dir=run_dir,
            resume=True, **kwargs
        )
        assert fanned == fresh
        # And resuming over the now-complete journal replays it.
        replay = load_latency_sweep(
            build_single_tier, loads, jobs=2, run_dir=run_dir,
            resume=True, **kwargs
        )
        assert replay == fresh
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["resumed_points"] == len(loads)

    def test_fault_plan_enters_point_keys(self, plan, tmp_path):
        run_dir = tmp_path / "run"
        kwargs = dict(duration=0.15, warmup=0.02, replicas=2)
        load_latency_sweep(
            build_single_tier, [500], run_dir=run_dir, **kwargs
        )
        # Same load, now with faults: must journal a new point rather
        # than reuse the healthy one.
        load_latency_sweep(
            build_single_tier, [500], run_dir=run_dir, resume=True,
            fault_plan=plan, **kwargs
        )
        assert len(RunStore(run_dir)) == 2


class TestConservationAudit:
    def test_measure_at_load_passes_audit(self):
        point = measure_at_load(
            thrift_echo, 2000, duration=0.15, warmup=0.05, audit=True
        )
        assert point.completed > 0

    def test_audit_passes_under_faults(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps([
            {"at": 0.05, "kind": "crash", "instance": "server_0"},
        ]))
        measure_at_load(
            build_single_tier, 800, duration=0.15, warmup=0.02,
            fault_plan=load_fault_plan(path), audit=True, replicas=2,
        )

    def test_tampered_counters_fail_audit(self):
        world = thrift_echo(seed=3)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=1000, stop_at=0.05
        )
        client.start()
        world.sim.run(until=0.05)
        # Honest counters pass, with and without the dispatcher
        # cross-check.
        audit_client(client, world.sim, dispatcher=world.dispatcher)
        client.requests_sent += 1  # a "leaked" request
        with pytest.raises(AuditError, match="conservation"):
            audit_client(client, world.sim, dispatcher=world.dispatcher)

    def test_tampered_recorder_fails_audit(self):
        world = thrift_echo(seed=3)
        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=1000, stop_at=0.05
        )
        client.start()
        world.sim.run(until=0.05)
        client.latencies.record(0.04, 1e-3)  # phantom sample
        with pytest.raises(AuditError, match="latency recorder"):
            audit_client(client, world.sim)


class TestRegistryForwarding:
    def test_supports_flags(self):
        fig6 = registry.get("fig6")
        assert fig6.supports_run_dir and fig6.supports_audit
        table3 = registry.get("table3")
        assert not table3.supports_run_dir
        assert not table3.supports_audit

    def test_run_dir_forwarded_and_journaled(self, tmp_path):
        run_dir = tmp_path / "run"
        result = registry.get("fig14").run(
            run_dir=run_dir,
            cluster_sizes=(2,), slow_fractions=(0.0,), num_requests=30,
        )
        assert len(result) == 1
        assert (run_dir / "journal.jsonl").exists()
        assert (run_dir / "manifest.json").exists()

    def test_audit_forwarded(self):
        # Registry experiments must pass the audit end to end.
        registry.get("fig6").run(
            audit=True, loads=(500,), duration=0.1, warmup=0.02
        )

    def test_unsupported_run_dir_is_loud(self, tmp_path):
        with pytest.raises(ReproError, match="run_dir"):
            registry.get("table3").run(run_dir=tmp_path / "run")

    def test_unsupported_audit_is_loud(self):
        with pytest.raises(ReproError, match="audit"):
            registry.get("table3").run(audit=True)
