"""Tests for the tail-at-scale study, the comparison harness, and the
experiment registry (scaled-down runs)."""

import pytest

from repro.apps import single_memcached
from repro.errors import ConfigError
from repro.experiments import registry
from repro.experiments.comparison import bighouse_single_tier
from repro.experiments.tail_at_scale import (
    build_fanout_cluster,
    measure_tail_at_scale,
)


class TestTailAtScale:
    def test_all_leaves_visited(self):
        world = build_fanout_cluster(cluster_size=10, slow_fraction=0.0)
        from repro.workload import OpenLoopClient

        client = OpenLoopClient(
            world.sim, world.dispatcher, arrivals=50, max_requests=10
        )
        client.start()
        world.sim.run()
        for i in range(10):
            assert world.instance(f"leaf{i}").jobs_completed == 10

    def test_slow_servers_inflate_tail(self):
        clean = measure_tail_at_scale(
            40, 0.0, qps=30, num_requests=150, seed=2
        )
        dirty = measure_tail_at_scale(
            40, 0.10, qps=30, num_requests=150, seed=2
        )
        assert dirty.p99 > 2 * clean.p99

    def test_larger_cluster_raises_tail_with_fixed_slow_fraction(self):
        small = measure_tail_at_scale(5, 0.05, qps=30, num_requests=150, seed=2)
        large = measure_tail_at_scale(80, 0.05, qps=30, num_requests=150, seed=2)
        assert large.p99 > small.p99

    def test_validation(self):
        with pytest.raises(ConfigError):
            build_fanout_cluster(0, 0.0)
        with pytest.raises(ConfigError):
            build_fanout_cluster(5, 1.5)
        with pytest.raises(ConfigError):
            build_fanout_cluster(5, 0.1, slow_factor=0.5)


class TestComparison:
    def test_bighouse_p99_grows_with_load(self):
        light = bighouse_single_tier(
            single_memcached, 20_000, servers=4, mean_request_bytes=256
        )
        heavy = bighouse_single_tier(
            single_memcached, 170_000, servers=4, mean_request_bytes=256
        )
        assert heavy > light


class TestRegistry:
    def test_lookup_known_experiment(self):
        spec = registry.get("fig8")
        assert spec.paper_ref == "Figure 8"
        assert callable(spec.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            registry.get("fig99")

    def test_all_experiments_unique_ids(self):
        specs = registry.all_experiments()
        ids = [s.exp_id for s in specs]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 11

    def test_registry_runner_executes(self):
        # The cheapest registry entry at reduced scale.
        spec = registry.get("fig14")
        points = spec.run(
            cluster_sizes=(5,), slow_fractions=(0.0,), num_requests=40
        )
        assert len(points) == 1
        assert points[0].p99 > 0

    def test_sweep_experiments_support_jobs(self):
        for exp_id in ("fig5", "fig6", "fig8", "fig10", "fig12a",
                       "fig12b", "fig14"):
            assert registry.get(exp_id).supports_jobs, exp_id

    def test_jobs_ignored_by_serial_runners(self):
        # Inherently serial experiments (timelines) must not receive a
        # jobs kwarg they would choke on.
        spec = registry.get("fig16")
        assert not spec.supports_jobs
        import inspect
        # run(jobs=4) on such a spec only forwards declared kwargs.
        sig = inspect.signature(spec.runner)
        assert "jobs" not in sig.parameters


class TestParallelGrid:
    def test_tail_at_scale_jobs_identity(self):
        from repro.experiments.tail_at_scale import tail_at_scale_sweep

        kwargs = dict(
            cluster_sizes=(5, 10), slow_fractions=(0.0, 0.1),
            qps=50, num_requests=30, seed=4,
        )
        serial = tail_at_scale_sweep(jobs=1, **kwargs)
        fanned = tail_at_scale_sweep(jobs=2, **kwargs)
        assert fanned == serial
        # Grid order: fractions outer, sizes inner — unchanged.
        assert [(p.cluster_size, p.slow_fraction) for p in serial] == [
            (5, 0.0), (10, 0.0), (5, 0.1), (10, 0.1)
        ]
