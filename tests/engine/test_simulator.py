"""Unit tests for the discrete-event loop."""

import pytest

from repro.engine import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_handler_can_schedule_more_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_args_passed_to_callback(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, got.append, 42)
        sim.run()
        assert got == [42]


class TestRunBounds:
    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.0)
        assert fired == [1]
        assert sim.now == 1.0
        assert len(sim.events) == 1

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        sim.run()
        assert fired == [1, 2]

    def test_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3
        assert len(sim.events) == 2

    def test_stop_from_handler(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert len(sim.events) == 1

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def bad():
            sim.run()

        sim.schedule(0.0, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestDeterminism:
    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_priority_orders_same_instant(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "arrival", priority=10)
        sim.schedule(1.0, order.append, "completion", priority=0)
        sim.schedule(1.0, order.append, "admin", priority=-10)
        sim.run()
        assert order == ["admin", "completion", "arrival"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert fired == []
