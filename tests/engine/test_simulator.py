"""Unit tests for the discrete-event loop."""

import pytest

from repro.engine import GUARD_CHECK_EVERY, RunProgress, Simulator
from repro.errors import SimulationAborted, SimulationError


class TestScheduling:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_handler_can_schedule_more_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_args_passed_to_callback(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, got.append, 42)
        sim.run()
        assert got == [42]


class TestRunBounds:
    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.0)
        assert fired == [1]
        assert sim.now == 1.0
        assert len(sim.events) == 1

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        sim.run()
        assert fired == [1, 2]

    def test_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3
        assert len(sim.events) == 2

    def test_stop_from_handler(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert len(sim.events) == 1

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def bad():
            sim.run()

        sim.schedule(0.0, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestStopResume:
    """stop() on the drain fast path, and running again afterwards."""

    def test_stop_on_drain_fast_path_leaves_queue_intact(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.schedule(4.5, sim.stop)
        sim.run()  # no bounds -> drain fast path
        assert fired == [0, 1, 2, 3, 4]
        assert len(sim.events) == 5
        assert sim.now == 4.5

    def test_run_resumes_after_stop(self):
        sim = Simulator()
        fired = []
        for i in range(6):
            sim.schedule(float(i), fired.append, i)
        sim.schedule(2.5, sim.stop)
        sim.run()
        processed_first = sim.events_processed
        clock_first = sim.now
        sim.run()  # stop request must not leak into the next run
        assert fired == list(range(6))
        # Clock monotonicity and events_processed continuity across runs.
        assert sim.now >= clock_first
        assert sim.now == 5.0
        assert sim.events_processed == processed_first + 3
        assert len(sim.events) == 0

    def test_stop_on_bounded_path_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=10.0)
        assert fired == [1]
        sim.run(until=10.0)
        assert fired == [1, 2]
        assert sim.now == 10.0

    def test_repeated_stop_resume_cycles_are_monotone(self):
        sim = Simulator()
        clocks = []
        for i in range(20):
            sim.schedule(float(i), lambda: None)
            sim.schedule(float(i), sim.stop)
        while sim.events:
            sim.run()
            clocks.append(sim.now)
        assert clocks == sorted(clocks)
        assert sim.events_processed == 40


def _self_rescheduling(sim, delay=0.0):
    """An event loop that never drains: each firing schedules the next."""

    def tick():
        sim.schedule(delay, tick)

    sim.schedule(0.0, tick)


class TestGuardrails:
    def test_wall_clock_budget_aborts_livelock(self):
        sim = Simulator()
        _self_rescheduling(sim)  # infinite zero-delay self-rescheduling
        with pytest.raises(SimulationAborted) as err:
            sim.run(wall_clock_budget=0.05)
        abort = err.value
        assert abort.reason.startswith("wall_clock_budget")
        assert abort.events_processed > 0
        assert abort.queue_depth >= 1
        assert abort.wall_clock >= 0.05
        assert abort.clock == sim.now

    def test_simulator_usable_after_abort(self):
        sim = Simulator()
        _self_rescheduling(sim, delay=1e-9)
        with pytest.raises(SimulationAborted):
            sim.run(wall_clock_budget=0.02)
        clock = sim.now
        # The queue is intact and a bounded run still works.
        sim.run(max_events=10)
        assert sim.now >= clock

    def test_max_live_events_aborts_unbounded_growth(self):
        sim = Simulator()

        def fork():  # each firing schedules two more: exponential queue
            sim.schedule(1.0, fork)
            sim.schedule(1.0, fork)

        sim.schedule(0.0, fork)
        with pytest.raises(SimulationAborted) as err:
            sim.run(max_events=10_000_000, wall_clock_budget=30.0,
                    max_live_events=50_000)
        assert "live events" in err.value.reason
        assert err.value.queue_depth > 50_000

    def test_watchdog_sees_progress_and_can_stop(self):
        sim = Simulator()
        _self_rescheduling(sim, delay=1e-9)
        seen = []

        def watchdog(progress):
            seen.append(progress)
            sim.stop()

        sim.run(watchdog=watchdog, watchdog_interval=0.0)
        assert len(seen) == 1
        assert isinstance(seen[0], RunProgress)
        assert seen[0].events_processed >= 0
        assert seen[0].queue_depth >= 1
        # stop() from the watchdog ended the run cleanly: no exception,
        # queue intact, clock where the watchdog left it.
        assert len(sim.events) >= 1

    def test_guarded_run_respects_until_and_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        sim.run(until=2.0, wall_clock_budget=30.0)
        assert fired == [0, 1, 2]
        assert sim.now == 2.0
        sim.run(max_events=1, wall_clock_budget=30.0)
        assert fired == [0, 1, 2, 3]

    def test_guarded_matches_unguarded_results(self):
        def drive(**kwargs):
            sim = Simulator(seed=3)
            order = []
            for i in range(3 * GUARD_CHECK_EVERY):
                sim.schedule(
                    float(sim.random.stream("t").random()), order.append, i
                )
            sim.run(**kwargs)
            return sim.now, order

        plain = drive()
        guarded = drive(wall_clock_budget=60.0, max_live_events=10**7)
        assert guarded == plain


class TestDeterminism:
    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_priority_orders_same_instant(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "arrival", priority=10)
        sim.schedule(1.0, order.append, "completion", priority=0)
        sim.schedule(1.0, order.append, "admin", priority=-10)
        sim.run()
        assert order == ["admin", "completion", "arrival"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert fired == []
