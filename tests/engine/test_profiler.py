"""Engine self-profiler: attribution, determinism, and the off switch."""

import json

import pytest

from repro.engine import EngineProfiler, Simulator
from repro.errors import ReproError


class FakeClock:
    """Deterministic wall clock: each read advances by *step*."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        now = self.t
        self.t += self.step
        return now


class NamedComponent:
    def __init__(self, name):
        self.name = name
        self.fired = 0

    def handler(self):
        self.fired += 1


class TestDispatchAccounting:
    def test_books_count_and_wall_per_kind(self):
        profiler = EngineProfiler(clock=FakeClock(step=1.0))
        component = NamedComponent("svc0")
        for _ in range(3):
            profiler.dispatch(component.handler, ())
        assert component.fired == 3
        assert profiler.events == 3
        assert profiler.wall == pytest.approx(3.0)  # 1 fake second each
        (entry,) = profiler.hotspots()
        assert entry.key == "NamedComponent.handler"
        assert entry.count == 3
        assert entry.seconds == pytest.approx(3.0)
        assert entry.mean_us == pytest.approx(1e6)

    def test_sites_attribute_to_named_owner(self):
        profiler = EngineProfiler(clock=FakeClock())
        a, b = NamedComponent("a"), NamedComponent("b")
        profiler.dispatch(a.handler, ())
        profiler.dispatch(b.handler, ())
        profiler.dispatch(b.handler, ())
        by_key = {e.key: e.count for e in profiler.sites()}
        assert by_key == {"a": 1, "b": 2}

    def test_plain_functions_have_kind_but_no_site(self):
        profiler = EngineProfiler(clock=FakeClock())

        def free_handler():
            pass

        profiler.dispatch(free_handler, ())
        assert profiler.hotspots()[0].key.endswith("free_handler")
        assert profiler.sites() == []

    def test_raising_handler_still_booked(self):
        profiler = EngineProfiler(clock=FakeClock())

        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            profiler.dispatch(boom, ())
        assert profiler.events == 1
        assert profiler.hotspots()[0].count == 1

    def test_reset_clears_everything(self):
        profiler = EngineProfiler(clock=FakeClock())
        profiler.dispatch(NamedComponent("x").handler, ())
        profiler.reset()
        assert profiler.events == 0
        assert profiler.wall == 0.0
        assert profiler.summary()["hotspots"] == []

    def test_top_validation(self):
        profiler = EngineProfiler()
        with pytest.raises(ReproError):
            profiler.hotspots(top=0)
        with pytest.raises(ReproError):
            profiler.sites(top=0)


class TestSimulatorIntegration:
    @staticmethod
    def _chain_run(sim, n_events=500):
        order = []

        def chain():
            order.append(sim.now)
            if len(order) < n_events:
                sim.schedule(1e-6, chain)

        sim.schedule(0.0, chain)
        sim.run()
        return order

    def test_profiled_run_processes_identical_events(self):
        plain = Simulator(seed=1)
        plain_order = self._chain_run(plain)

        profiled = Simulator(seed=1)
        profiled.profiler = EngineProfiler()
        profiled_order = self._chain_run(profiled)

        assert profiled_order == plain_order
        assert profiled.events_processed == plain.events_processed
        assert profiled.now == plain.now
        assert profiled.profiler.events == profiled.events_processed

    def test_profiler_defaults_off(self):
        assert Simulator(seed=0).profiler is None

    def test_profiled_run_with_horizon_and_guardrails(self):
        # The profiled dispatch must also ride the guarded loop.
        sim = Simulator(seed=0)
        sim.profiler = EngineProfiler()
        self_calls = []

        def tick():
            self_calls.append(sim.now)
            sim.schedule(0.01, tick)

        sim.schedule(0.0, tick)
        sim.run(until=0.1, wall_clock_budget=60.0)
        assert sim.profiler.events == len(self_calls)
        assert sim.profiler.hotspots()[0].count == len(self_calls)

    def test_summary_shape_and_write(self, tmp_path):
        sim = Simulator(seed=0)
        sim.profiler = EngineProfiler()
        self._chain_run(sim, n_events=50)
        summary = sim.profiler.summary(top=5)
        assert set(summary) == {
            "events", "handler_wall_s", "events_per_sec", "hotspots", "sites"
        }
        assert summary["events"] == 50
        assert summary["hotspots"]
        for spot in summary["hotspots"]:
            assert set(spot) == {"key", "count", "seconds", "mean_us"}
        path = tmp_path / "profile.json"
        sim.profiler.write(path, top=5)
        assert json.loads(path.read_text())["events"] == 50
