"""The transient-event slab: recycling must be invisible to results."""

from repro.engine import Simulator
from repro.engine.event import (
    _FREE_CAP,
    _FREE_EVENTS,
    Event,
    acquire_event,
    release_event,
)


class TestSlab:
    def test_acquire_marks_transient(self):
        event = acquire_event(1.0, lambda: None, (), 0)
        assert event.transient
        assert event.time == 1.0

    def test_release_then_acquire_recycles(self):
        _FREE_EVENTS.clear()
        event = acquire_event(1.0, lambda: None, (), 0)
        release_event(event)
        assert event.fn is None  # no stale closure retained
        again = acquire_event(2.0, lambda: None, ("x",), 5)
        assert again is event
        assert again.time == 2.0
        assert again.priority == 5
        assert again.args == ("x",)
        assert not again.cancelled

    def test_free_list_is_bounded(self):
        _FREE_EVENTS.clear()
        events = [acquire_event(0.0, lambda: None, (), 0)
                  for _ in range(_FREE_CAP + 50)]
        for event in events:
            release_event(event)
        assert len(_FREE_EVENTS) == _FREE_CAP

    def test_plain_events_are_not_transient(self):
        assert not Event(0.0, lambda: None).transient


class TestScheduleTransient:
    def test_fires_like_schedule(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule_transient(0.5, fired.append, "a")
        sim.schedule(0.25, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 0.5

    def test_recycled_across_many_schedules(self):
        _FREE_EVENTS.clear()
        sim = Simulator(seed=0)

        def chain(k):
            if k:
                sim.schedule_transient(1e-3, chain, k - 1)

        sim.schedule_transient(0.0, chain, 200)
        sim.run()
        assert sim.events_processed == 201
        # The firing event is only released after its callback returns,
        # so the chain ping-pongs between exactly two slab objects —
        # 201 events, 2 allocations.
        assert len(_FREE_EVENTS) == 2

    def test_interleaves_deterministically_with_regular_events(self):
        def run_once():
            sim = Simulator(seed=4)
            log = []
            rng = sim.random.stream("slab-test")
            for i in range(50):
                t = float(rng.random())
                sim.schedule_transient(t, log.append, ("t", round(t, 9)))
                sim.schedule(t, log.append, ("r", round(t, 9)))
            sim.run()
            return log

        assert run_once() == run_once()
