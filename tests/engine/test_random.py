"""Tests for seeded random streams: reproducibility and independence."""

from repro.engine import RandomStreams


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("arrivals")
        b = RandomStreams(7).stream("arrivals")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("arrivals")
        b = RandomStreams(2).stream("arrivals")
        assert a.random(5).tolist() != b.random(5).tolist()

    def test_named_streams_are_independent_of_creation_order(self):
        fwd = RandomStreams(3)
        x1 = fwd.stream("x").random(3).tolist()
        y1 = fwd.stream("y").random(3).tolist()

        rev = RandomStreams(3)
        y2 = rev.stream("y").random(3).tolist()
        x2 = rev.stream("x").random(3).tolist()

        assert x1 == x2
        assert y1 == y2

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")
        assert "a" in streams

    def test_different_names_differ(self):
        streams = RandomStreams(0)
        a = streams.stream("a").random(5).tolist()
        b = streams.stream("b").random(5).tolist()
        assert a != b


class TestFork:
    def test_fork_is_reproducible(self):
        a = RandomStreams(5).fork("rep-1").stream("svc")
        b = RandomStreams(5).fork("rep-1").stream("svc")
        assert a.random(4).tolist() == b.random(4).tolist()

    def test_fork_decorrelates(self):
        base = RandomStreams(5)
        a = base.fork("rep-1").stream("svc").random(4).tolist()
        b = base.fork("rep-2").stream("svc").random(4).tolist()
        assert a != b

    def test_fork_differs_from_parent(self):
        base = RandomStreams(5)
        parent = base.stream("svc").random(4).tolist()
        child = base.fork("rep-1").stream("svc").random(4).tolist()
        assert parent != child
