"""Unit tests for the event heap: ordering, tie-breaking, cancellation."""

import pytest

from repro.engine import Event, EventQueue


def make(time, priority=0, tag=None):
    return Event(time, lambda: tag, priority=priority)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [3.0, 1.0, 2.0]:
            q.push(make(t))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(make(1.0, priority=10))
        high = q.push(make(1.0, priority=-10))
        assert q.pop() is high
        assert q.pop() is low

    def test_fifo_among_equal_time_and_priority(self):
        q = EventQueue()
        events = [q.push(make(5.0)) for _ in range(20)]
        popped = [q.pop() for _ in range(20)]
        assert popped == events

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        first = q.push(make(1.0))
        second = q.push(make(2.0))
        q.cancel(first)
        assert q.pop() is second

    def test_cancel_updates_len(self):
        q = EventQueue()
        e = q.push(make(1.0))
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0
        assert not q

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(make(1.0))
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(make(1.0))
        q.push(make(2.0))
        q.cancel(first)
        assert q.peek_time() == 2.0


class TestDrain:
    def test_drain_until_respects_bound(self):
        q = EventQueue()
        for t in [1.0, 2.0, 3.0]:
            q.push(make(t))
        seen = []
        q.drain_until(2.0, seen.append)
        assert [e.time for e in seen] == [1.0, 2.0]
        assert len(q) == 1

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(make(1.0))
        q.clear()
        assert q.pop() is None


class TestPeek:
    def test_peek_time_none_when_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(make(4.0))
        assert q.peek_time() == 4.0
        assert len(q) == 1
