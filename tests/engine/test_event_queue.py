"""Unit tests for the event heap: ordering, tie-breaking, cancellation."""

import pytest

from repro.engine import Event, EventQueue


def make(time, priority=0, tag=None):
    return Event(time, lambda: tag, priority=priority)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [3.0, 1.0, 2.0]:
            q.push(make(t))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(make(1.0, priority=10))
        high = q.push(make(1.0, priority=-10))
        assert q.pop() is high
        assert q.pop() is low

    def test_fifo_among_equal_time_and_priority(self):
        q = EventQueue()
        events = [q.push(make(5.0)) for _ in range(20)]
        popped = [q.pop() for _ in range(20)]
        assert popped == events

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        first = q.push(make(1.0))
        second = q.push(make(2.0))
        q.cancel(first)
        assert q.pop() is second

    def test_cancel_updates_len(self):
        q = EventQueue()
        e = q.push(make(1.0))
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0
        assert not q

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(make(1.0))
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(make(1.0))
        q.push(make(2.0))
        q.cancel(first)
        assert q.peek_time() == 2.0


class TestDrain:
    def test_drain_until_respects_bound(self):
        q = EventQueue()
        for t in [1.0, 2.0, 3.0]:
            q.push(make(t))
        seen = []
        q.drain_until(2.0, seen.append)
        assert [e.time for e in seen] == [1.0, 2.0]
        assert len(q) == 1

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(make(1.0))
        q.clear()
        assert q.pop() is None


class TestPeek:
    def test_peek_time_none_when_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(make(4.0))
        assert q.peek_time() == 4.0
        assert len(q) == 1


class TestDirectCancel:
    """Event.cancel() and queue.cancel(event) must agree on accounting."""

    def test_event_cancel_updates_queue_len(self):
        q = EventQueue()
        e = q.push(make(1.0))
        e.cancel()
        assert e.cancelled
        assert len(q) == 0

    def test_event_cancel_then_queue_cancel_idempotent(self):
        q = EventQueue()
        e = q.push(make(1.0))
        e.cancel()
        q.cancel(e)
        assert len(q) == 0

    def test_cancel_unqueued_event_only_flags(self):
        e = make(1.0)
        e.cancel()
        assert e.cancelled

    def test_cancel_popped_event_does_not_corrupt_len(self):
        q = EventQueue()
        e = q.push(make(1.0))
        q.push(make(2.0))
        assert q.pop() is e
        e.cancel()  # already out of the queue: flag only
        assert len(q) == 1

    def test_cancel_foreign_event_does_not_touch_len(self):
        q1, q2 = EventQueue(), EventQueue()
        e = q1.push(make(1.0))
        q2.push(make(2.0))
        q2.cancel(e)  # e belongs to q1
        assert e.cancelled
        assert len(q1) == 0  # owner decremented via delegation
        assert len(q2) == 1

    def test_cancel_after_clear_is_harmless(self):
        q = EventQueue()
        e = q.push(make(1.0))
        q.clear()
        e.cancel()
        assert len(q) == 0


class TestHeavyCancellation:
    """Live-count invariants and compaction under mass cancellation."""

    def test_live_count_invariant_under_interleaved_ops(self):
        q = EventQueue()
        events = [q.push(make(float(i % 7), priority=i % 3))
                  for i in range(300)]
        for e in events[::2]:
            q.cancel(e)
        assert len(q) == 150
        live = sorted(events[1::2], key=lambda e: (e.time, e.priority, e.seq))
        assert [q.pop() for _ in range(150)] == live
        assert len(q) == 0
        assert q.pop() is None

    def test_peek_time_after_cancelling_head_run(self):
        q = EventQueue()
        head = [q.push(make(1.0)) for _ in range(50)]
        q.push(make(9.0))
        for e in head:
            q.cancel(e)
        assert q.peek_time() == 9.0
        assert len(q) == 1

    def test_compaction_preserves_order(self):
        # Trigger compaction (> 64 dead and dead > live) and check the
        # survivors still pop in (time, priority, seq) order.
        q = EventQueue()
        doomed = [q.push(make(float(i), priority=-(i % 5)))
                  for i in range(100)]
        keepers = [q.push(make(50.0, priority=p)) for p in (3, -2, 0, -2)]
        for e in doomed:
            q.cancel(e)
        assert len(q) == len(keepers)
        expected = sorted(keepers, key=lambda e: (e.time, e.priority, e.seq))
        assert [q.pop() for _ in range(len(keepers))] == expected

    def test_cancel_all_then_reuse(self):
        q = EventQueue()
        for _ in range(200):
            e = q.push(make(1.0))
            q.cancel(e)
        assert len(q) == 0
        fresh = q.push(make(2.0))
        assert q.pop() is fresh

    def test_drain_until_with_interleaved_cancels(self):
        q = EventQueue()
        events = [q.push(make(float(i))) for i in range(10)]
        for e in events[1::2]:  # cancel 1,3,5,7,9
            e.cancel()
        seen = []
        q.drain_until(6.0, seen.append)
        assert [e.time for e in seen] == [0.0, 2.0, 4.0, 6.0]
        assert len(q) == 1  # only 8.0 left live
        assert q.pop().time == 8.0


class TestSeqIsolation:
    def test_seq_counters_are_per_queue(self):
        # Two queues must hand out independent seq numbers so FIFO
        # tie-breaking is reproducible regardless of other simulators.
        q1, q2 = EventQueue(), EventQueue()
        a = q1.push(make(1.0))
        q2.push(make(1.0))
        q2.push(make(1.0))
        b = q1.push(make(1.0))
        assert (a.seq, b.seq) == (0, 1)
