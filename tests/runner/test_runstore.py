"""The durable-run layer: content keys, journal round-trips, atomic
manifests, and resume-from-journal semantics."""

import json
import os
from dataclasses import dataclass

import pytest

from repro.errors import PartialSweepError, ReproError
from repro.experiments.loadsweep import SweepPoint
from repro.runner import RunStore, durable_map, point_key, register_result_type
from repro.runner.runstore import (
    canonical_json,
    decode_value,
    encode_value,
    write_json_atomic,
)


def square(x):
    return x * x


def boom_on_negative(x):
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x * x


class Odd:
    """Unregistered, pickle-only payload for the codec fallback test."""

    def __eq__(self, other):
        return isinstance(other, Odd)


class TestPointKey:
    def test_deterministic(self):
        a = point_key("fig8", {"qps": 50.2}, 7, {"duration": 0.3})
        b = point_key("fig8", {"qps": 50.2}, 7, {"duration": 0.3})
        assert a == b

    def test_any_component_changes_key(self):
        base = point_key("fig8", {"qps": 50.2}, 7, {"duration": 0.3})
        assert point_key("fig9", {"qps": 50.2}, 7, {"duration": 0.3}) != base
        assert point_key("fig8", {"qps": 50.9}, 7, {"duration": 0.3}) != base
        assert point_key("fig8", {"qps": 50.2}, 8, {"duration": 0.3}) != base
        assert point_key("fig8", {"qps": 50.2}, 7, {"duration": 0.4}) != base

    def test_dict_key_order_is_canonical(self):
        assert (point_key("e", {"a": 1, "b": 2}, 0)
                == point_key("e", {"b": 2, "a": 1}, 0))

    def test_close_floats_distinguished(self):
        # Full-precision floats enter the hash; no int() truncation.
        assert (canonical_json({"qps": 50.2})
                != canonical_json({"qps": 50.20000000000001}))


class TestCodec:
    def test_scalars_round_trip(self):
        for value in (None, True, 3, -7, 0.1, float("inf"), "hi"):
            assert decode_value(encode_value(value)) == value

    def test_registered_dataclass_round_trips_exactly(self):
        point = SweepPoint(50.2, 49.9, 1.25e-3, 1.0e-3, 2.5e-3,
                           3.0000000000000004e-3, 123)
        # Through an actual JSON string, as the journal does.
        recovered = decode_value(json.loads(json.dumps(encode_value(point))))
        assert recovered == point
        assert recovered.p99 == point.p99  # exact bits, not approx

    def test_infinite_latencies_round_trip(self):
        wedged = SweepPoint(100.0, 0.0, float("inf"), float("inf"),
                            float("inf"), float("inf"), 0)
        assert decode_value(json.loads(
            json.dumps(encode_value(wedged)))) == wedged

    def test_tuples_and_nesting(self):
        value = {"grid": [(5, 0.01), (10, 0.05)], "name": "t"}
        assert decode_value(json.loads(
            json.dumps(encode_value(value)))) == value

    def test_unregistered_object_pickles(self):
        encoded = encode_value({"o": Odd()})
        assert "__pickle__" in json.dumps(encoded)
        assert decode_value(encoded)["o"] == Odd()

    def test_register_rejects_non_dataclass(self):
        with pytest.raises(ReproError):
            register_result_type(int)

    def test_register_rejects_name_collision(self):
        @dataclass
        class SweepPoint:  # shadows the real one by name
            x: int

        with pytest.raises(ReproError, match="already registered"):
            register_result_type(SweepPoint)


class TestRunStore:
    def test_journal_appends_and_reloads(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        key = point_key("exp", 1, 11)
        store.record_ok(key, item=1, seed=11, result=SweepPoint(
            1.0, 1.0, 1e-3, 1e-3, 1e-3, 1e-3, 10))
        # A second store over the same dir sees the entry.
        reloaded = RunStore(tmp_path / "run", "exp")
        assert key in reloaded
        assert reloaded.has_ok(key)
        assert reloaded.result_for(key).completed == 10

    def test_failed_entries_are_not_ok(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        key = point_key("exp", -1, 11)
        store.record_failure(key, item=-1, seed=11,
                             error="ValueError('x')", kind="exception",
                             attempts=3)
        assert key in store
        assert not store.has_ok(key)
        with pytest.raises(ReproError):
            store.result_for(key)

    def test_later_entries_win(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        key = point_key("exp", 2, 0)
        store.record_failure(key, item=2, seed=0, error="boom")
        store.record_ok(key, item=2, seed=0, result=4)
        reloaded = RunStore(tmp_path / "run", "exp")
        assert reloaded.has_ok(key)
        assert reloaded.result_for(key) == 4

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        key = point_key("exp", 3, 0)
        store.record_ok(key, item=3, seed=0, result=9)
        with open(store.journal_path, "a") as fh:
            fh.write('{"key": "torn-entr')  # killed mid-write
        reloaded = RunStore(tmp_path / "run", "exp")
        assert len(reloaded) == 1
        assert reloaded.has_ok(key)

    def test_manifest_contents(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp", config={"duration": 0.25})
        ok = point_key("exp", 1, 5)
        bad = point_key("exp", -1, 6)
        store.record_ok(ok, item=1, seed=5, result=1)
        store.record_failure(bad, item=-1, seed=6, error="boom",
                             kind="crash", attempts=2)
        manifest = store.write_manifest("partial")
        on_disk = json.loads(store.manifest_path.read_text())
        assert on_disk == json.loads(json.dumps(manifest))
        assert on_disk["status"] == "partial"
        assert on_disk["counts"] == {"ok": 1, "failed": 1}
        assert on_disk["points"][ok]["outcome"] == "ok"
        assert on_disk["points"][ok]["seed"] == 5
        assert on_disk["points"][bad]["kind"] == "crash"
        assert on_disk["config"] == {"duration": 0.25}
        for field in ("python", "numpy", "repro", "platform"):
            assert field in on_disk["environment"]
        assert on_disk["wall_time_s"] >= 0

    def test_manifest_write_is_atomic(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_json_atomic(path, {"a": 1})
        write_json_atomic(path, {"a": 2})
        assert json.loads(path.read_text()) == {"a": 2}
        # No temp litter left behind.
        assert os.listdir(tmp_path) == ["manifest.json"]


class TestDurableMap:
    def _keys(self, items, seed=0):
        return [point_key("exp", item, seed) for item in items]

    def test_first_run_journals_everything(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        items = [1, 2, 3]
        out = durable_map(square, items, store=store,
                          keys=self._keys(items))
        assert out == [1, 4, 9]
        assert len(store) == 3
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["status"] == "completed"
        assert manifest["resumed_points"] == 0

    def test_resume_skips_journaled_points(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        items = [1, 2, 3, 4]
        keys = self._keys(items)
        durable_map(square, items[:2], store=store, keys=keys[:2])

        computed = []

        def counting(x):
            computed.append(x)
            return square(x)

        out = durable_map(counting, items, store=store, keys=keys,
                          resume=True)
        assert out == [1, 4, 9, 16]
        assert computed == [3, 4]  # exactly n - k recomputed
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["resumed_points"] == 2

    def test_resume_false_recomputes(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        items = [1, 2]
        keys = self._keys(items)
        durable_map(square, items, store=store, keys=keys)
        computed = []

        def counting(x):
            computed.append(x)
            return square(x)

        durable_map(counting, items, store=store, keys=keys, resume=False)
        assert computed == [1, 2]

    def test_failures_journaled_and_recomputed_on_resume(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        items = [1, -1, 2]
        keys = self._keys(items)
        with pytest.raises(PartialSweepError) as err:
            durable_map(boom_on_negative, items, store=store, keys=keys)
        assert err.value.results[0] == 1
        assert err.value.results[2] == 4
        assert err.value.failures[0].index == 1
        assert err.value.failures[0].seed is None
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["status"] == "partial"
        assert manifest["counts"] == {"ok": 2, "failed": 1}

        # Resume recomputes only the failed point.
        computed = []

        def now_fine(x):
            computed.append(x)
            return x * x

        out = durable_map(now_fine, items, store=store, keys=keys,
                          resume=True)
        assert out == [1, 1, 4]
        assert computed == [-1]
        assert json.loads(
            store.manifest_path.read_text())["status"] == "completed"

    def test_interrupt_writes_manifest(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")

        def interrupt(x):
            if x == 2:
                raise KeyboardInterrupt
            return x * x

        items = [1, 2, 3]
        with pytest.raises(KeyboardInterrupt):
            durable_map(interrupt, items, store=store,
                        keys=self._keys(items))
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["status"] == "interrupted"
        # The completed point survived in the journal.
        assert manifest["counts"].get("ok", 0) >= 1

    def test_seeds_recorded(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        items = [5, 6]
        keys = self._keys(items)
        durable_map(square, items, store=store, keys=keys, seeds=[55, 66])
        manifest = json.loads(store.manifest_path.read_text())
        assert sorted(
            p["seed"] for p in manifest["points"].values()) == [55, 66]

    def test_key_item_length_mismatch_rejected(self, tmp_path):
        store = RunStore(tmp_path / "run", "exp")
        with pytest.raises(ReproError, match="keys"):
            durable_map(square, [1, 2], store=store, keys=["only-one"])
