"""Self-healing parallel_map: worker crashes, hangs, retries, and the
collect-failures mode that keeps a sweep alive through all of them."""

import os
import time

import pytest

from repro.errors import PartialSweepError, ReproError, WorkerCrashError
from repro.runner import ItemFailure, parallel_map

pytestmark = pytest.mark.filterwarnings(
    "ignore::RuntimeWarning"  # sandboxed pool fallback is fine here
)


def square(x):
    return x * x


def crash_on_negative(x):
    """Kills its worker process outright for negative items — the
    simulated OOM-kill/segfault that used to abort whole sweeps."""
    if x < 0:
        os._exit(13)
    return x * x


def boom_on_negative(x):
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x * x


def hang_on_negative(x):
    if x < 0:
        time.sleep(120.0)
    return x * x


_FLAKY_DIR = None


def flaky_once(x):
    """Fails (by exception) the first time each item is seen, then
    succeeds — exercised via a scratch-dir marker shared across
    workers."""
    marker = os.path.join(_FLAKY_DIR, f"seen-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure for {x}")
    return x * x


class TestRetries:
    def test_transient_exception_retried_in_process(self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        assert parallel_map(flaky_once, [2, 3], jobs=1, retries=1) == [4, 9]

    def test_transient_exception_retried_in_pool(self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        # NB: _FLAKY_DIR must reach the workers; fork start method
        # inherits it. If the platform spawns, items fail terminally
        # and this test would raise — guard by collecting.
        try:
            result = parallel_map(flaky_once, [2, 3, 4], jobs=2, retries=2)
        except PartialSweepError as exc:  # pragma: no cover - spawn platforms
            pytest.skip(f"start method does not inherit globals: {exc}")
        assert result == [4, 9, 16]

    def test_exhausted_retries_raise_original_exception(self):
        with pytest.raises(ValueError, match="bad item -1"):
            parallel_map(boom_on_negative, [1, -1, 2], jobs=1, retries=2)

    def test_negative_retries_rejected(self):
        with pytest.raises(ReproError, match="retries"):
            parallel_map(square, [1], retries=-1)

    def test_bad_failures_mode_rejected(self):
        with pytest.raises(ReproError, match="failures"):
            parallel_map(square, [1], failures="ignore")


class TestCollectMode:
    def test_collect_keeps_good_results(self):
        with pytest.raises(PartialSweepError) as err:
            parallel_map(
                boom_on_negative, [1, -1, 2, -2, 3], jobs=1,
                failures="collect",
            )
        sweep = err.value
        assert len(sweep.failures) == 2
        results = sweep.results
        assert [results[0], results[2], results[4]] == [1, 4, 9]
        assert isinstance(results[1], ItemFailure)
        assert results[1].kind == "exception"
        assert results[1].attempts == 1
        assert "bad item -1" in results[1].error
        assert results[1].item == -1
        # ItemFailure is falsy so .filter(bool)-style cleanup works.
        assert [r for r in results if r] == [1, 4, 9]

    def test_collect_counts_attempts(self):
        with pytest.raises(PartialSweepError) as err:
            parallel_map(
                boom_on_negative, [-5], jobs=1, retries=2,
                failures="collect",
            )
        (failure,) = err.value.failures
        assert failure.attempts == 3  # 1 try + 2 retries

    def test_collect_without_failures_returns_normally(self):
        assert parallel_map(
            square, [1, 2, 3], jobs=1, failures="collect"
        ) == [1, 4, 9]


class TestOnResult:
    def test_on_result_called_per_item(self):
        seen = []
        out = parallel_map(
            square, [3, 4], jobs=1, on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [9, 16]
        assert sorted(seen) == [(0, 9), (1, 16)]

    def test_on_result_in_pool(self):
        seen = {}
        items = list(range(8))
        parallel_map(
            square, items, jobs=2, on_result=lambda i, r: seen.update({i: r})
        )
        assert seen == {i: i * i for i in items}

    def test_on_result_skipped_for_failures(self):
        seen = []
        with pytest.raises(PartialSweepError):
            parallel_map(
                boom_on_negative, [1, -1], jobs=1, failures="collect",
                on_result=lambda i, r: seen.append(i),
            )
        assert seen == [0]


class TestWorkerCrash:
    """The acceptance scenario: an os._exit item must not take the
    sweep (or its siblings' results) down with it."""

    def test_crashed_item_attributed_others_survive(self):
        items = [1, 2, -1, 3, 4, 5]
        with pytest.raises(PartialSweepError) as err:
            parallel_map(
                crash_on_negative, items, jobs=2, retries=1,
                failures="collect",
            )
        sweep = err.value
        # Exactly the crasher failed; every innocent item has its result.
        assert [f.item for f in sweep.failures] == [-1]
        (failure,) = sweep.failures
        assert failure.kind == "crash"
        assert failure.attempts >= 2  # retried up to budget
        for i, item in enumerate(items):
            if item >= 0:
                assert sweep.results[i] == item * item
        assert isinstance(sweep.results[2], ItemFailure)

    def test_crash_fail_fast_raises_worker_crash_error(self):
        with pytest.raises(WorkerCrashError) as err:
            parallel_map(crash_on_negative, [1, -1, 2], jobs=2)
        assert err.value.failure.kind == "crash"

    def test_all_items_crash_still_terminates(self):
        with pytest.raises(PartialSweepError) as err:
            parallel_map(
                crash_on_negative, [-1, -2], jobs=2, failures="collect"
            )
        assert len(err.value.failures) == 2


class TestTimeout:
    def test_hung_item_killed_and_attributed(self):
        items = [1, -1, 2]
        start = time.monotonic()
        with pytest.raises(PartialSweepError) as err:
            parallel_map(
                hang_on_negative, items, jobs=2, timeout=1.0,
                failures="collect",
            )
        elapsed = time.monotonic() - start
        sweep = err.value
        assert [f.item for f in sweep.failures] == [-1]
        assert sweep.failures[0].kind == "timeout"
        assert sweep.results[0] == 1 and sweep.results[2] == 4
        # The 120s sleeper was killed, not waited out.
        assert elapsed < 60

    def test_timeout_ignored_in_process(self):
        # jobs=1 has no worker to kill; fast items simply run.
        assert parallel_map(square, [1, 2], jobs=1, timeout=0.001) == [1, 4]
