"""Tests for the process-parallel runner: ordering, jobs=1/jobs=N
identity, error propagation, and the seed-derivation discipline."""

import os

import pytest

from repro.errors import ReproError
from repro.runner import (
    default_jobs_from_env,
    derive_seed,
    parallel_map,
    resolve_jobs,
)


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad item {x}")


class TestParallelMap:
    def test_in_process_basic(self):
        assert parallel_map(square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_empty_items(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_stays_in_process(self):
        assert parallel_map(square, [5], jobs=8) == [25]

    def test_preserves_item_order_across_workers(self):
        items = list(range(40))
        assert parallel_map(square, items, jobs=4) == [i * i for i in items]

    def test_jobs_identity(self):
        items = [0.5, 1.5, 2.5, 3.5, 4.5]
        serial = parallel_map(square, items, jobs=1)
        fanned = parallel_map(square, items, jobs=4)
        assert fanned == serial

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="bad item 1"):
            parallel_map(boom, [1, 2, 3], jobs=1)

    def test_worker_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="bad item"):
            parallel_map(boom, [1, 2, 3], jobs=2)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores

    def test_negative_raises(self):
        with pytest.raises(ReproError):
            resolve_jobs(-2)

    def test_negative_message_states_accepted_range(self):
        # The message must tell the caller what IS accepted, not just
        # complain: >= 1 explicit workers, or 0/None for all cores.
        with pytest.raises(ReproError, match=r">= 1.*0/None.*all cores"):
            resolve_jobs(-2)


class TestJobsFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs_from_env() == 1

    def test_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs_from_env() == 6

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        # Bad values surface through the warnings machinery (same
        # channel parallel_map's pool fallback uses), not bare prints.
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert default_jobs_from_env() == 1

    def test_negative_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert default_jobs_from_env() == 1


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 50.2) == derive_seed(1, 50.2)

    def test_close_floats_decorrelate(self):
        # The regression the old int(qps) truncation had: 50.2 and 50.9
        # collapsed to the same seed.
        assert derive_seed(1, 50.2) != derive_seed(1, 50.9)

    def test_base_seed_matters(self):
        assert derive_seed(1, 50.2) != derive_seed(2, 50.2)

    def test_component_order_matters(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_string_components(self):
        assert derive_seed(0, "fig8") != derive_seed(0, "fig10")
        assert derive_seed(0, "fig8") == derive_seed(0, "fig8")

    def test_negative_int_component(self):
        assert derive_seed(0, -5) != derive_seed(0, 5)

    def test_fits_in_32_bits(self):
        for qps in (0.1, 50.2, 1e6):
            assert 0 <= derive_seed(7, qps) < 2**32

    def test_rejects_unseedable(self):
        with pytest.raises(ReproError):
            derive_seed(0, [1, 2])
