"""Regression tests for rate-vs-time realism wrapping.

An additive interference stall applied to a per-byte *rate* would be
multiplied by the message size downstream, inflating a 0.5 ms stall
into hundreds of milliseconds of phantom work (the netproc blow-up bug
this guards against).
"""

import numpy as np
import pytest

from repro.apps import load_balanced
from repro.distributions import Deterministic
from repro.testbed import Interfered, Jittered, RealismConfig
from repro.workload import OpenLoopClient


class TestWrapRate:
    def test_wrap_rate_never_adds_stalls(self):
        config = RealismConfig(interference_prob=1.0)  # stall every draw
        wrapped = config.wrap_rate(Deterministic(12e-9))
        rng = np.random.default_rng(0)
        samples = np.array([wrapped.sample(rng) for _ in range(1000)])
        # Pure multiplicative jitter around 12 ns — no 0.5 ms stalls.
        assert samples.max() < 100e-9

    def test_wrap_time_does_add_stalls(self):
        config = RealismConfig(interference_prob=1.0)
        wrapped = config.wrap(Deterministic(12e-6))
        rng = np.random.default_rng(0)
        samples = np.array([wrapped.sample(rng) for _ in range(100)])
        assert samples.min() > 50e-6  # every draw carries a stall

    def test_wrap_rate_none_passthrough(self):
        assert RealismConfig().wrap_rate(None) is None

    def test_wrapped_rate_is_jittered_only(self):
        config = RealismConfig()
        wrapped = config.wrap_rate(Deterministic(1.0))
        assert isinstance(wrapped, Jittered)
        assert not isinstance(wrapped, Interfered)


class TestLoadBalancedRealismRegression:
    def test_real_series_tracks_sim_below_saturation(self):
        """lb8 at half capacity: the 'real' system must sit within a
        small factor of the simulated one, not tens of milliseconds."""
        def run(realism):
            world = load_balanced(scale_out=8, seed=100, realism=realism)
            client = OpenLoopClient(
                world.sim, world.dispatcher, arrivals=30_000, stop_at=0.2,
                realism=world.realism,
            )
            client.start()
            world.sim.run(until=0.2)
            return client.latencies.mean(since=0.06)

        sim_mean = run(None)
        real_mean = run(RealismConfig())
        assert real_mean < 3 * sim_mean
