"""Tests for the real-system surrogate layer."""

import numpy as np
import pytest

from repro.distributions import Deterministic
from repro.errors import ConfigError
from repro.testbed import Interfered, Jittered, RealismConfig


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestJittered:
    def test_mean_preserved(self, rng):
        dist = Jittered(Deterministic(1e-3), cv=0.2)
        samples = np.array([dist.sample(rng) for _ in range(50_000)])
        assert samples.mean() == pytest.approx(1e-3, rel=0.02)
        assert dist.mean() == 1e-3

    def test_adds_variance(self, rng):
        dist = Jittered(Deterministic(1e-3), cv=0.2)
        samples = np.array([dist.sample(rng) for _ in range(10_000)])
        assert samples.std() > 0
        assert np.std(samples) / np.mean(samples) == pytest.approx(0.2, rel=0.1)

    def test_invalid_cv(self):
        with pytest.raises(ConfigError):
            Jittered(Deterministic(1.0), cv=0.0)


class TestInterfered:
    def test_stall_probability(self, rng):
        dist = Interfered(Deterministic(1e-3), 0.1, Deterministic(1.0))
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        stalled = np.mean(samples > 0.5)
        assert stalled == pytest.approx(0.1, abs=0.01)

    def test_mean_accounts_for_stalls(self):
        dist = Interfered(Deterministic(1e-3), 0.5, Deterministic(1e-3))
        assert dist.mean() == pytest.approx(1.5e-3)

    def test_zero_probability_is_transparent(self, rng):
        dist = Interfered(Deterministic(1e-3), 0.0, Deterministic(1.0))
        assert dist.sample(rng) == 1e-3

    def test_invalid_probability(self):
        with pytest.raises(ConfigError):
            Interfered(Deterministic(1.0), 1.5, Deterministic(1.0))


class TestRealismConfig:
    def test_wrap_preserves_mean_roughly(self, rng):
        config = RealismConfig(jitter_cv=0.1, interference_prob=0.0)
        wrapped = config.wrap(Deterministic(1e-3))
        samples = np.array([wrapped.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(1e-3, rel=0.05)

    def test_wrap_none_passthrough(self):
        assert RealismConfig().wrap(None) is None

    def test_observed_latency_below_timeout_is_identity(self, rng):
        config = RealismConfig(timeout=0.1)
        assert config.observed_latency(0.05, rng) == 0.05

    def test_observed_latency_above_timeout_pays_penalty(self, rng):
        config = RealismConfig(
            timeout=0.1, timeout_penalty=Deterministic(0.2)
        )
        assert config.observed_latency(0.15, rng) == pytest.approx(0.35)

    def test_invalid_timeout(self):
        with pytest.raises(ConfigError):
            RealismConfig(timeout=0.0)
