"""Shared builders for service-layer tests."""

import pytest

from repro.distributions import Deterministic
from repro.engine import Simulator
from repro.hardware import CoreSet, CpuCore, DvfsLadder, GHZ
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)


@pytest.fixture
def sim():
    return Simulator(seed=0)


def make_cores(n=1, name="svc", freq=2.6 * GHZ, ladder=None):
    ladder = ladder or DvfsLadder([1.2 * GHZ, 2.6 * GHZ])
    return CoreSet(name, [CpuCore(f"m/cpu{i}", ladder, freq) for i in range(n)])


def single_stage_service(
    sim,
    service_time=1e-3,
    cores=1,
    name="svc",
    model=None,
):
    """A one-stage microservice with deterministic service time."""
    stage = Stage("proc", 0, SingleQueue(), base=Deterministic(service_time))
    selector = PathSelector([ExecutionPath(0, "only", [0])])
    return Microservice(
        name,
        sim,
        [stage],
        selector,
        make_cores(cores, name),
        model=model or SimpleModel(),
    )
