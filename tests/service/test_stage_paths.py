"""Tests for stage cost model, execution paths, and path selection."""

import numpy as np
import pytest

from repro.distributions import Deterministic, FrequencyTable
from repro.errors import ConfigError
from repro.hardware import GHZ
from repro.service import (
    Connection,
    ExecutionPath,
    Job,
    PathSelector,
    Request,
    SingleQueue,
    Stage,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def jobs(n, size=0.0):
    return [Job(Request(0.0), size_bytes=size) for _ in range(n)]


class TestStageCost:
    def test_base_cost_independent_of_batch(self, rng):
        stage = Stage("epoll", 0, SingleQueue(), base=Deterministic(10e-6))
        assert stage.compute_cost(jobs(1), 2.6 * GHZ, rng) == pytest.approx(10e-6)
        assert stage.compute_cost(jobs(7), 2.6 * GHZ, rng) == pytest.approx(10e-6)

    def test_per_job_cost_linear_in_batch(self, rng):
        stage = Stage(
            "epoll", 0, SingleQueue(),
            base=Deterministic(10e-6), per_job=Deterministic(2e-6),
        )
        assert stage.compute_cost(jobs(5), 2.6 * GHZ, rng) == pytest.approx(
            10e-6 + 5 * 2e-6
        )

    def test_per_byte_cost_proportional_to_bytes(self, rng):
        stage = Stage(
            "socket_read", 0, SingleQueue(), per_byte=Deterministic(1e-9)
        )
        batch = jobs(2, size=500)
        assert stage.compute_cost(batch, 2.6 * GHZ, rng) == pytest.approx(1e-6)

    def test_frequency_scaling(self, rng):
        table = FrequencyTable.single(Deterministic(10e-6), 2.6 * GHZ)
        stage = Stage("proc", 0, SingleQueue(), base=table)
        slow = stage.compute_cost(jobs(1), 1.3 * GHZ, rng)
        assert slow == pytest.approx(20e-6)

    def test_io_cost_sums_over_batch(self, rng):
        stage = Stage(
            "disk", 0, SingleQueue(),
            base=Deterministic(1e-6), io=Deterministic(5e-3),
        )
        assert stage.io_cost(jobs(3), rng) == pytest.approx(15e-3)

    def test_io_cost_zero_without_io(self, rng):
        stage = Stage("proc", 0, SingleQueue(), base=Deterministic(1e-6))
        assert stage.io_cost(jobs(3), rng) == 0.0

    def test_mean_cost_folds_terms(self):
        stage = Stage(
            "s", 0, SingleQueue(),
            base=Deterministic(10e-6),
            per_job=Deterministic(1e-6),
            per_byte=Deterministic(1e-9),
        )
        mean = stage.mean_cost(batch_size=4, mean_bytes=1000)
        assert mean == pytest.approx(10e-6 + 4e-6 + 4e-6)

    def test_empty_batch_rejected(self, rng):
        stage = Stage("s", 0, SingleQueue(), base=Deterministic(1e-6))
        with pytest.raises(ConfigError):
            stage.compute_cost([], 2.6 * GHZ, rng)

    def test_stage_without_costs_rejected(self):
        with pytest.raises(ConfigError):
            Stage("empty", 0, SingleQueue())

    def test_record_accumulates_telemetry(self):
        stage = Stage("s", 0, SingleQueue(), base=Deterministic(1e-6))
        stage.record(4, 2e-6)
        stage.record(1, 1e-6)
        assert stage.invocations == 2
        assert stage.jobs_processed == 5
        assert stage.busy_time == pytest.approx(3e-6)


class TestExecutionPath:
    def test_basic(self):
        path = ExecutionPath(0, "read", [0, 1, 2, 3])
        assert len(path) == 4
        assert path.stage_ids == [0, 1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionPath(0, "empty", [])


class TestPathSelector:
    def test_single_path_needs_no_probabilities(self, rng):
        selector = PathSelector([ExecutionPath(0, "only", [0])])
        assert selector.select(rng).name == "only"

    def test_explicit_path_id(self, rng):
        selector = PathSelector(
            [ExecutionPath(0, "read", [0]), ExecutionPath(1, "write", [0])],
            probabilities={0: 0.5, 1: 0.5},
        )
        assert selector.select(rng, path_id=1).name == "write"

    def test_explicit_path_name(self, rng):
        selector = PathSelector(
            [ExecutionPath(0, "read", [0]), ExecutionPath(1, "write", [0])],
            probabilities={0: 1.0, 1: 0.0},
        )
        assert selector.select(rng, path_name="write").name == "write"

    def test_probabilistic_split(self, rng):
        # MongoDB-style hit/miss state machine.
        selector = PathSelector(
            [ExecutionPath(0, "hit", [0]), ExecutionPath(1, "miss", [0])],
            probabilities={0: 0.8, 1: 0.2},
        )
        names = [selector.select(rng).name for _ in range(10_000)]
        miss_rate = names.count("miss") / len(names)
        assert miss_rate == pytest.approx(0.2, abs=0.02)

    def test_multiple_paths_without_probabilities_rejected(self, rng):
        selector = PathSelector(
            [ExecutionPath(0, "a", [0]), ExecutionPath(1, "b", [0])]
        )
        with pytest.raises(ConfigError):
            selector.select(rng)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            PathSelector(
                [ExecutionPath(0, "a", [0])], probabilities={0: 0.9}
            )

    def test_unknown_path_in_probabilities(self):
        with pytest.raises(ConfigError):
            PathSelector(
                [ExecutionPath(0, "a", [0])], probabilities={5: 1.0}
            )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            PathSelector(
                [ExecutionPath(0, "a", [0]), ExecutionPath(0, "b", [0])]
            )

    def test_unknown_lookup_rejected(self):
        selector = PathSelector([ExecutionPath(0, "a", [0])])
        with pytest.raises(ConfigError):
            selector.get(4)
        with pytest.raises(ConfigError):
            selector.get_by_name("zzz")


class TestConnectionBlocking:
    def test_block_unblock_by_owner(self):
        conn = Connection()
        conn.block(request_id=1)
        assert conn.blocked
        assert conn.holder == 1
        conn.unblock(request_id=2)  # not the owner: ignored
        assert conn.blocked
        conn.unblock(request_id=1)
        assert not conn.blocked
        assert conn.holder is None

    def test_blocks_queue_in_fifo_order(self):
        conn = Connection()
        conn.block(1)
        conn.block(2)  # queues behind request 1
        conn.block(3)
        assert conn.holder == 1
        conn.unblock(1)
        assert conn.holder == 2
        conn.unblock(2)
        assert conn.holder == 3
        conn.unblock(3)
        assert not conn.blocked

    def test_same_request_blocking_twice_rejected(self):
        from repro.errors import TopologyError

        conn = Connection()
        conn.block(1)
        with pytest.raises(TopologyError):
            conn.block(1)
        conn.block(2)
        with pytest.raises(TopologyError):
            conn.block(2)  # already waiting

    def test_unblock_fires_callbacks(self):
        conn = Connection()
        calls = []
        conn.on_unblock(lambda: calls.append(1))
        conn.block(1)
        conn.unblock(1)
        assert calls == [1]

    def test_handover_to_waiter_fires_callbacks(self):
        conn = Connection()
        calls = []
        conn.on_unblock(lambda: calls.append(1))
        conn.block(1)
        conn.block(2)
        conn.unblock(1)  # still blocked (by 2) but visibility changed
        assert conn.blocked
        assert calls == [1]

    def test_unblock_when_open_is_noop(self):
        conn = Connection()
        calls = []
        conn.on_unblock(lambda: calls.append(1))
        conn.unblock(1)
        assert calls == []
