"""Tests for single/socket/epoll stage queues and blocking visibility."""

import pytest

from repro.errors import ConfigError
from repro.service import (
    Connection,
    EpollQueue,
    Job,
    Request,
    SingleQueue,
    SocketQueue,
    make_queue,
)


def job_on(conn=None, size=0.0):
    return Job(Request(created_at=0.0), size_bytes=size, connection=conn)


class TestSingleQueue:
    def test_fifo_order(self):
        q = SingleQueue()
        jobs = [job_on() for _ in range(3)]
        for j in jobs:
            q.push(j)
        assert q.next_batch() == [jobs[0]]
        assert q.next_batch() == [jobs[1]]

    def test_batch_limit(self):
        q = SingleQueue(batch_limit=2)
        jobs = [job_on() for _ in range(3)]
        for j in jobs:
            q.push(j)
        assert q.next_batch() == jobs[:2]
        assert q.next_batch() == [jobs[2]]

    def test_empty_batch(self):
        assert SingleQueue().next_batch() == []

    def test_counts(self):
        q = SingleQueue()
        q.push(job_on())
        assert len(q) == 1
        assert q.ready_count() == 1
        assert q.has_ready()

    def test_invalid_limit(self):
        with pytest.raises(ConfigError):
            SingleQueue(batch_limit=0)


class TestSocketQueue:
    def test_batch_from_single_connection(self):
        q = SocketQueue(batch_limit=10)
        a, b = Connection("a"), Connection("b")
        ja = [job_on(a) for _ in range(2)]
        jb = [job_on(b) for _ in range(2)]
        for j in [ja[0], jb[0], ja[1], jb[1]]:
            q.push(j)
        batch = q.next_batch()
        conns = {j.connection for j in batch}
        assert len(conns) == 1  # one connection per read()

    def test_round_robin_across_connections(self):
        q = SocketQueue(batch_limit=10)
        a, b = Connection("a"), Connection("b")
        q.push(job_on(a))
        q.push(job_on(b))
        first = q.next_batch()[0].connection
        q.push(job_on(a))
        q.push(job_on(b))
        second = q.next_batch()[0].connection
        assert first is not second

    def test_batch_limit_respected(self):
        q = SocketQueue(batch_limit=2)
        a = Connection("a")
        for _ in range(5):
            q.push(job_on(a))
        assert len(q.next_batch()) == 2
        assert len(q) == 3

    def test_blocked_connection_is_invisible(self):
        q = SocketQueue()
        a = Connection("a")
        q.push(job_on(a))
        a.block(request_id=10**9)
        assert q.ready_count() == 0
        assert q.next_batch() == []
        assert len(q) == 1  # still queued, just hidden
        a.unblock(request_id=10**9)
        assert len(q.next_batch()) == 1

    def test_jobs_without_connection_share_a_subqueue(self):
        q = SocketQueue(batch_limit=10)
        q.push(job_on())
        q.push(job_on())
        assert len(q.next_batch()) == 2


class TestEpollQueue:
    def test_batch_spans_all_active_connections(self):
        q = EpollQueue(per_connection_limit=16)
        conns = [Connection(str(i)) for i in range(3)]
        for c in conns:
            q.push(job_on(c))
            q.push(job_on(c))
        batch = q.next_batch()
        assert len(batch) == 6
        assert {j.connection for j in batch} == set(conns)

    def test_per_connection_limit(self):
        q = EpollQueue(per_connection_limit=1)
        a = Connection("a")
        for _ in range(3):
            q.push(job_on(a))
        assert len(q.next_batch()) == 1
        assert len(q) == 2

    def test_unlimited_per_connection(self):
        q = EpollQueue(per_connection_limit=None)
        a = Connection("a")
        for _ in range(5):
            q.push(job_on(a))
        assert len(q.next_batch()) == 5

    def test_blocked_connection_excluded_from_epoll(self):
        q = EpollQueue()
        a, b = Connection("a"), Connection("b")
        q.push(job_on(a))
        q.push(job_on(b))
        a.block(request_id=10**9)
        batch = q.next_batch()
        assert [j.connection for j in batch] == [b]

    def test_invalid_limit(self):
        with pytest.raises(ConfigError):
            EpollQueue(per_connection_limit=0)


class TestMakeQueue:
    def test_listing1_epoll_parameter(self):
        # Listing 1: "queue_parameter": [null, N]
        q = make_queue("epoll", [None, 8])
        assert isinstance(q, EpollQueue)
        assert q.per_connection_limit == 8

    def test_socket_parameter(self):
        q = make_queue("socket", [4])
        assert isinstance(q, SocketQueue)
        assert q.batch_limit == 4

    def test_single_no_parameter(self):
        assert isinstance(make_queue("single", None), SingleQueue)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            make_queue("ring", None)
