"""Tests for service-level telemetry: utilisation, stage accounting,
queue depths, and DVFS changes scheduled as simulation events."""

import pytest

from repro.distributions import Deterministic
from repro.engine import PRIORITY_ADMIN, Simulator
from repro.hardware import GHZ
from repro.service import Job, Request

from .conftest import make_cores, single_stage_service


@pytest.fixture
def sim():
    return Simulator(seed=0)


def send_n(svc, sim, n):
    done = []
    for _ in range(n):
        job = Job(Request(sim.now))
        job.on_complete = lambda j: done.append(sim.now)
        svc.accept(job)
    return done


class TestUtilisation:
    def test_fully_busy_core_reports_one(self, sim):
        svc = single_stage_service(sim, service_time=1e-3, cores=1)
        send_n(svc, sim, 10)
        sim.run()
        assert svc.utilization(now=sim.now) == pytest.approx(1.0)

    def test_half_busy(self, sim):
        svc = single_stage_service(sim, service_time=1e-3, cores=1)
        send_n(svc, sim, 5)
        sim.run()
        assert svc.utilization(now=10e-3) == pytest.approx(0.5)


class TestStageAccounting:
    def test_busy_time_matches_work_done(self, sim):
        svc = single_stage_service(sim, service_time=2e-3, cores=2)
        send_n(svc, sim, 6)
        sim.run()
        stage = svc.stage(0)
        assert stage.jobs_processed == 6
        assert stage.invocations == 6
        assert stage.busy_time == pytest.approx(12e-3)

    def test_queue_depth_while_backlogged(self, sim):
        svc = single_stage_service(sim, service_time=1e-3, cores=1)
        send_n(svc, sim, 5)
        # One executing, four queued.
        assert svc.queued_jobs == 4
        sim.run()
        assert svc.queued_jobs == 0


class TestDvfsAsEvent:
    def test_admin_event_changes_frequency_mid_run(self, sim):
        """Paper SSIII-A: 'an event may represent ... cluster
        administration operations, like changing a server's DVFS
        setting'."""
        svc = single_stage_service(sim, service_time=1e-3, cores=1)
        done = send_n(svc, sim, 4)
        # Halve the frequency after the second job completes.
        sim.schedule(
            2.5e-3, svc.set_frequency, 1.2 * GHZ, priority=PRIORITY_ADMIN
        )
        sim.run()
        # Jobs 1-3 dispatch at full speed (job 3 starts at t=2ms, before
        # the change, and keeps its sampled service time); only job 4
        # dispatches at the lower frequency and runs 2.6/1.2 slower.
        slow = 1e-3 * 2.6 / 1.2
        assert done[1] == pytest.approx(2e-3)
        assert done[2] == pytest.approx(3e-3)
        assert done[3] == pytest.approx(3e-3 + slow, rel=1e-6)
