"""Behavioural tests for the Microservice dispatch loop."""

import pytest

from repro.distributions import Deterministic
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.hardware import GHZ
from repro.service import (
    Connection,
    EpollQueue,
    ExecutionPath,
    IoDevice,
    Job,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    Request,
    SingleQueue,
    Stage,
)

from .conftest import make_cores, single_stage_service


def send(svc, sim, n=1, conn=None, size=0.0, at=None):
    """Accept n jobs and collect their completion times."""
    done = []
    for _ in range(n):
        job = Job(Request(sim.now), size_bytes=size, connection=conn)
        job.on_complete = lambda j: done.append((j, sim.now))
        svc.accept(job)
    return done


class TestSingleStage:
    def test_one_job_takes_service_time(self, sim):
        svc = single_stage_service(sim, service_time=1e-3)
        done = send(svc, sim)
        sim.run()
        assert len(done) == 1
        assert done[0][1] == pytest.approx(1e-3)

    def test_jobs_serialise_on_one_core(self, sim):
        svc = single_stage_service(sim, service_time=1e-3, cores=1)
        done = send(svc, sim, n=3)
        sim.run()
        assert [t for _, t in done] == pytest.approx([1e-3, 2e-3, 3e-3])

    def test_two_cores_run_in_parallel(self, sim):
        svc = single_stage_service(sim, service_time=1e-3, cores=2)
        done = send(svc, sim, n=2)
        sim.run()
        assert [t for _, t in done] == pytest.approx([1e-3, 1e-3])

    def test_counters(self, sim):
        svc = single_stage_service(sim)
        send(svc, sim, n=5)
        sim.run()
        assert svc.jobs_accepted == 5
        assert svc.jobs_completed == 5
        assert svc.queued_jobs == 0

    def test_job_latency_fields(self, sim):
        svc = single_stage_service(sim, service_time=2e-3)
        done = send(svc, sim, n=2)
        sim.run()
        first, second = done[0][0], done[1][0]
        assert first.service_latency == pytest.approx(2e-3)
        # The second job waited for the first: latency includes queueing.
        assert second.service_latency == pytest.approx(4e-3)


class TestMultiStagePipeline:
    def make_two_stage(self, sim, t0=1e-3, t1=2e-3, cores=2):
        stages = [
            Stage("parse", 0, SingleQueue(), base=Deterministic(t0)),
            Stage("respond", 1, SingleQueue(), base=Deterministic(t1)),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0, 1])])
        return Microservice("svc", sim, stages, selector, make_cores(cores))

    def test_stages_run_in_sequence(self, sim):
        svc = self.make_two_stage(sim)
        done = send(svc, sim)
        sim.run()
        assert done[0][1] == pytest.approx(3e-3)

    def test_pipeline_overlaps_jobs(self, sim):
        # With 2 cores the two jobs run fully in parallel (2ms each);
        # serial execution would need 4ms.
        svc = self.make_two_stage(sim, t0=1e-3, t1=1e-3, cores=2)
        done = send(svc, sim, n=2)
        sim.run()
        times = sorted(t for _, t in done)
        assert times == pytest.approx([2e-3, 2e-3])

    def test_later_stages_drain_first(self, sim):
        # One core: once A finishes stage0, the scheduler must prefer
        # A.stage1 over B.stage0 (run-to-completion bias).
        svc = self.make_two_stage(sim, t0=1e-3, t1=1e-3, cores=1)
        done = send(svc, sim, n=2)
        sim.run()
        first_done = min(t for _, t in done)
        assert first_done == pytest.approx(2e-3)

    def test_path_subset_of_stages(self, sim):
        stages = [
            Stage("a", 0, SingleQueue(), base=Deterministic(1e-3)),
            Stage("b", 1, SingleQueue(), base=Deterministic(10.0)),
            Stage("c", 2, SingleQueue(), base=Deterministic(1e-3)),
        ]
        selector = PathSelector([ExecutionPath(0, "skip-b", [0, 2])])
        svc = Microservice("svc", sim, stages, selector, make_cores(1))
        done = send(svc, sim)
        sim.run()
        assert done[0][1] == pytest.approx(2e-3)


class TestBatching:
    def make_epoll_service(self, sim, base=10e-6, per_job=1e-6):
        stages = [
            Stage(
                "epoll", 0, EpollQueue(per_connection_limit=None),
                base=Deterministic(base), per_job=Deterministic(per_job),
                batching=True,
            ),
            Stage("proc", 1, SingleQueue(), base=Deterministic(5e-6)),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0, 1])])
        return Microservice("svc", sim, stages, selector, make_cores(1))

    def test_epoll_amortises_base_cost(self, sim):
        svc = self.make_epoll_service(sim)
        conn = Connection()
        send(svc, sim, n=10, conn=conn)
        sim.run()
        epoll = svc.stage(0)
        # The first job dispatches alone (epoll wakes immediately); the
        # nine that arrived while it ran share a single second batch.
        assert epoll.invocations == 2
        assert epoll.jobs_processed == 10

    def test_epoll_cost_scales_with_events(self, sim):
        svc = self.make_epoll_service(sim, base=10e-6, per_job=1e-6)
        conn = Connection()
        done = send(svc, sim, n=4, conn=conn)
        sim.run()
        # Timeline on 1 core: epoll(1)=11us, proc=5us (deeper stage
        # preferred), epoll(3)=13us, then 3 x proc at 5us.
        assert max(t for _, t in done) == pytest.approx(
            11e-6 + 5e-6 + 13e-6 + 3 * 5e-6
        )


class TestConnectionBlockingInService:
    def test_blocked_connection_stalls_jobs(self, sim):
        svc = single_stage_service(sim, service_time=1e-3)
        conn = Connection()
        conn.block(request_id=999)
        done = send(svc, sim, conn=conn)
        sim.run(until=0.05)
        assert done == []
        conn.unblock(request_id=999)
        sim.run()
        assert len(done) == 1

    def test_unblock_kicks_dispatch(self, sim):
        svc = single_stage_service(sim, service_time=1e-3)
        conn = Connection()
        conn.block(request_id=1)
        done = send(svc, sim, conn=conn)
        sim.schedule(0.01, conn.unblock, 1)
        sim.run()
        assert done[0][1] == pytest.approx(0.011)


class TestMultiThreadedService:
    def test_thread_limit_caps_concurrency(self, sim):
        model = MultiThreadedModel(1, context_switch=0.0)
        svc = single_stage_service(sim, service_time=1e-3, cores=4, model=model)
        done = send(svc, sim, n=3)
        sim.run()
        # 4 cores but 1 thread: strictly serial.
        assert [t for _, t in done] == pytest.approx([1e-3, 2e-3, 3e-3])

    def test_context_switch_inflates_service_time(self, sim):
        model = MultiThreadedModel(2, context_switch=100e-6)
        svc = single_stage_service(sim, service_time=1e-3, cores=1, model=model)
        done = send(svc, sim, n=2)
        sim.run()
        # Second dispatch runs a different thread on the same core.
        assert done[1][1] == pytest.approx(2e-3 + 100e-6)


class TestIoStages:
    def test_io_stage_releases_core_during_io(self, sim):
        # Stage: 1ms CPU then 10ms disk. With one core, job B's CPU
        # phase overlaps job A's disk phase.
        disk = IoDevice("disk", sim, channels=4)
        stages = [
            Stage(
                "query", 0, SingleQueue(),
                base=Deterministic(1e-3), io=Deterministic(10e-3),
            ),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        svc = Microservice(
            "mongo", sim, stages, selector, make_cores(1), io_device=disk,
            model=MultiThreadedModel(4, context_switch=0.0),
        )
        done = send(svc, sim, n=2)
        sim.run()
        times = sorted(t for _, t in done)
        assert times[0] == pytest.approx(11e-3)
        assert times[1] == pytest.approx(12e-3)  # CPU serialised, disk parallel

    def test_io_stage_without_device_raises(self, sim):
        stages = [
            Stage(
                "query", 0, SingleQueue(),
                base=Deterministic(1e-3), io=Deterministic(1e-3),
            ),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        svc = Microservice("svc", sim, stages, selector, make_cores(1))
        send(svc, sim)
        with pytest.raises(ConfigError):
            sim.run()

    def test_single_channel_disk_saturates(self, sim):
        disk = IoDevice("disk", sim, channels=1)
        stages = [
            Stage(
                "query", 0, SingleQueue(),
                base=Deterministic(1e-6), io=Deterministic(10e-3),
            ),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        svc = Microservice(
            "mongo", sim, stages, selector, make_cores(2), io_device=disk,
            model=MultiThreadedModel(8, context_switch=0.0),
        )
        done = send(svc, sim, n=3)
        sim.run()
        # Disk serialises: ~10, ~20, ~30 ms.
        times = sorted(t for _, t in done)
        assert times[2] == pytest.approx(30e-3, rel=0.01)


class TestDvfsEffect:
    def test_lower_frequency_slows_service(self, sim):
        svc = single_stage_service(sim, service_time=1e-3)
        svc.set_frequency(1.2 * GHZ)
        done = send(svc, sim)
        sim.run()
        expected = 1e-3 * 2.6 / 1.2
        assert done[0][1] == pytest.approx(expected, rel=1e-6)

    def test_frequency_roundtrip(self, sim):
        svc = single_stage_service(sim)
        assert svc.frequency == 2.6 * GHZ
        svc.set_frequency(1.2 * GHZ)
        assert svc.frequency == 1.2 * GHZ


class TestValidation:
    def test_duplicate_stage_ids_rejected(self, sim):
        stages = [
            Stage("a", 0, SingleQueue(), base=Deterministic(1e-3)),
            Stage("b", 0, SingleQueue(), base=Deterministic(1e-3)),
        ]
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        with pytest.raises(ConfigError):
            Microservice("svc", sim, stages, selector, make_cores(1))

    def test_path_referencing_unknown_stage_rejected(self, sim):
        stages = [Stage("a", 0, SingleQueue(), base=Deterministic(1e-3))]
        selector = PathSelector([ExecutionPath(0, "p", [0, 7])])
        with pytest.raises(ConfigError):
            Microservice("svc", sim, stages, selector, make_cores(1))

    def test_no_stages_rejected(self, sim):
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        with pytest.raises(ConfigError):
            Microservice("svc", sim, [], selector, make_cores(1))

    def test_completion_listener_called(self, sim):
        svc = single_stage_service(sim)
        seen = []
        svc.on_job_complete(lambda j: seen.append(j.job_id))
        send(svc, sim, n=2)
        sim.run()
        assert len(seen) == 2
