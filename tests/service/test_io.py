"""Tests for the I/O device (disk) model."""

import pytest

from repro.engine import Simulator
from repro.errors import ConfigError
from repro.service import IoDevice


class TestIoDevice:
    def test_single_channel_serialises(self):
        sim = Simulator()
        disk = IoDevice("disk", sim, channels=1)
        done = []
        disk.submit(1.0, lambda: done.append(sim.now))
        disk.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0]

    def test_multi_channel_parallelism(self):
        sim = Simulator()
        disk = IoDevice("disk", sim, channels=2)
        done = []
        disk.submit(1.0, lambda: done.append(sim.now))
        disk.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0]

    def test_queue_depth_visible(self):
        sim = Simulator()
        disk = IoDevice("disk", sim, channels=1)
        disk.submit(1.0, lambda: None)
        disk.submit(1.0, lambda: None)
        assert disk.in_flight == 1
        assert disk.queue_depth == 1

    def test_zero_duration_completes_async(self):
        sim = Simulator()
        disk = IoDevice("disk", sim)
        done = []
        disk.submit(0.0, lambda: done.append(True))
        assert done == []  # not synchronous
        sim.run()
        assert done == [True]

    def test_ops_and_utilisation_accounting(self):
        sim = Simulator()
        disk = IoDevice("disk", sim, channels=1)
        disk.submit(2.0, lambda: None)
        disk.submit(2.0, lambda: None)
        sim.run()
        assert disk.ops_completed == 2
        assert disk.utilization(now=4.0) == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            IoDevice("disk", sim).submit(-1.0, lambda: None)

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigError):
            IoDevice("disk", Simulator(), channels=0)
