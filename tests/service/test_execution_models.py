"""Tests for the simple and multi-threaded execution models."""

import pytest

from repro.errors import ConfigError
from repro.service import MultiThreadedModel, SimpleModel


class FakeCore:
    """Minimal stand-in providing the last_worker_id attribute slot."""


class TestSimpleModel:
    def test_never_stalls(self):
        model = SimpleModel()
        workers = [model.acquire_worker() for _ in range(100)]
        assert all(w is not None for w in workers)

    def test_recycles_workers(self):
        model = SimpleModel()
        w = model.acquire_worker()
        model.release_worker(w)
        assert model.acquire_worker() is w

    def test_no_overhead(self):
        model = SimpleModel()
        w = model.acquire_worker()
        assert model.dispatch_overhead(w, FakeCore()) == 0.0

    def test_unbounded_concurrency(self):
        assert SimpleModel().concurrency is None


class TestMultiThreadedModel:
    def test_stalls_when_exhausted(self):
        model = MultiThreadedModel(2, context_switch=0.0)
        a = model.acquire_worker()
        b = model.acquire_worker()
        assert a is not None and b is not None
        assert model.acquire_worker() is None

    def test_release_restores_capacity(self):
        model = MultiThreadedModel(1, context_switch=0.0)
        w = model.acquire_worker()
        assert model.acquire_worker() is None
        model.release_worker(w)
        assert model.acquire_worker() is not None

    def test_concurrency_and_idle_counts(self):
        model = MultiThreadedModel(3, context_switch=0.0)
        assert model.concurrency == 3
        assert model.idle_threads == 3
        model.acquire_worker()
        assert model.idle_threads == 2

    def test_context_switch_charged_on_worker_change(self):
        model = MultiThreadedModel(2, context_switch=5e-6)
        core = FakeCore()
        a = model.acquire_worker()
        b = model.acquire_worker()
        assert model.dispatch_overhead(a, core) == 0.0  # first use is free
        assert model.dispatch_overhead(b, core) == 5e-6
        assert model.dispatch_overhead(b, core) == 0.0  # same thread again

    def test_dynamic_spawning_grows_to_max(self):
        model = MultiThreadedModel(1, context_switch=0.0, dynamic=True, max_threads=3)
        ws = [model.acquire_worker() for _ in range(3)]
        assert all(w is not None for w in ws)
        assert model.acquire_worker() is None
        assert model.spawned_dynamically == 2

    def test_dynamic_needs_max_threads(self):
        with pytest.raises(ConfigError):
            MultiThreadedModel(2, dynamic=True)
        with pytest.raises(ConfigError):
            MultiThreadedModel(2, dynamic=True, max_threads=1)

    def test_static_max_threads_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MultiThreadedModel(2, max_threads=4)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            MultiThreadedModel(0)
        with pytest.raises(ConfigError):
            MultiThreadedModel(1, context_switch=-1e-6)

    def test_double_release_rejected(self):
        from repro.errors import ResourceError

        model = MultiThreadedModel(1)
        w = model.acquire_worker()
        model.release_worker(w)
        with pytest.raises(ResourceError):
            model.release_worker(w)
