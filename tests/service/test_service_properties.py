"""Property-based tests on the intra-microservice layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Deterministic
from repro.engine import Simulator
from repro.service import (
    Connection,
    EpollQueue,
    ExecutionPath,
    Job,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    Request,
    SingleQueue,
    SocketQueue,
    Stage,
)

from .conftest import make_cores


def fresh_jobs(conn_indices):
    conns = {}
    jobs = []
    for idx in conn_indices:
        if idx is not None and idx not in conns:
            conns[idx] = Connection(f"c{idx}")
        jobs.append(
            Job(Request(0.0), connection=conns[idx] if idx is not None else None)
        )
    return jobs


conn_lists = st.lists(
    st.one_of(st.none(), st.integers(0, 5)), min_size=1, max_size=60
)


class TestQueueConservation:
    @given(conn_lists, st.integers(1, 8))
    def test_single_queue_conserves_jobs(self, conns, batch_limit):
        q = SingleQueue(batch_limit=batch_limit)
        jobs = fresh_jobs(conns)
        for j in jobs:
            q.push(j)
        drained = []
        while True:
            batch = q.next_batch()
            if not batch:
                break
            drained.extend(batch)
        assert sorted(j.job_id for j in drained) == sorted(
            j.job_id for j in jobs
        )

    @given(conn_lists, st.integers(1, 8))
    def test_socket_queue_conserves_jobs(self, conns, batch_limit):
        q = SocketQueue(batch_limit=batch_limit)
        jobs = fresh_jobs(conns)
        for j in jobs:
            q.push(j)
        drained = []
        while q.has_ready():
            drained.extend(q.next_batch())
        assert len(drained) == len(jobs)

    @given(conn_lists)
    def test_epoll_queue_conserves_jobs(self, conns):
        q = EpollQueue(per_connection_limit=4)
        jobs = fresh_jobs(conns)
        for j in jobs:
            q.push(j)
        drained = []
        while q.has_ready():
            drained.extend(q.next_batch())
        assert len(drained) == len(jobs)

    @given(conn_lists)
    def test_socket_batches_are_single_connection(self, conns):
        q = SocketQueue(batch_limit=16)
        for j in fresh_jobs(conns):
            q.push(j)
        while q.has_ready():
            batch = q.next_batch()
            keys = {
                j.connection.conn_id if j.connection else -1 for j in batch
            }
            assert len(keys) == 1

    @given(conn_lists)
    def test_fifo_within_each_connection(self, conns):
        q = SocketQueue(batch_limit=3)
        jobs = fresh_jobs(conns)
        for j in jobs:
            q.push(j)
        seen_per_conn = {}
        while q.has_ready():
            for job in q.next_batch():
                key = job.connection.conn_id if job.connection else -1
                seen_per_conn.setdefault(key, []).append(job.job_id)
        for key, ids in seen_per_conn.items():
            expected = [
                j.job_id for j in jobs
                if (j.connection.conn_id if j.connection else -1) == key
            ]
            assert ids == expected


class TestPipelineConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 30),   # jobs
        st.integers(1, 3),    # stages
        st.integers(1, 4),    # cores
        st.integers(1, 4),    # threads
    )
    def test_every_job_completes_exactly_once(
        self, n_jobs, n_stages, n_cores, n_threads
    ):
        sim = Simulator(seed=0)
        stages = [
            Stage(f"s{i}", i, SingleQueue(), base=Deterministic(1e-5))
            for i in range(n_stages)
        ]
        selector = PathSelector(
            [ExecutionPath(0, "p", list(range(n_stages)))]
        )
        svc = Microservice(
            "svc", sim, stages, selector, make_cores(n_cores),
            model=MultiThreadedModel(n_threads, context_switch=0.0),
        )
        completed = []
        for _ in range(n_jobs):
            job = Job(Request(0.0))
            job.on_complete = lambda j: completed.append(j.job_id)
            svc.accept(job)
        sim.run()
        assert len(completed) == n_jobs
        assert len(set(completed)) == n_jobs
        assert svc.queued_jobs == 0
        assert svc.cores.free_count == n_cores

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 4))
    def test_makespan_bounded_by_serial_and_ideal(self, n_jobs, n_cores):
        service_time = 1e-4
        sim = Simulator(seed=0)
        stage = Stage("s", 0, SingleQueue(), base=Deterministic(service_time))
        selector = PathSelector([ExecutionPath(0, "p", [0])])
        svc = Microservice("svc", sim, [stage], selector, make_cores(n_cores))
        for _ in range(n_jobs):
            svc.accept(Job(Request(0.0)))
        sim.run()
        serial = n_jobs * service_time
        ideal = np.ceil(n_jobs / n_cores) * service_time
        assert ideal - 1e-12 <= sim.now <= serial + 1e-12
