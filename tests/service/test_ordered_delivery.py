"""Tests for per-direction in-order delivery on connections."""

import pytest

from repro.service import Connection


class TestDeliverInOrder:
    def test_in_order_messages_flow_immediately(self):
        conn = Connection()
        log = []
        s1 = conn.next_seq("svc")
        s2 = conn.next_seq("svc")
        conn.deliver_in_order("svc", s1, lambda: log.append(1))
        conn.deliver_in_order("svc", s2, lambda: log.append(2))
        assert log == [1, 2]

    def test_early_arrival_parks_until_predecessor(self):
        conn = Connection()
        log = []
        s1 = conn.next_seq("svc")
        s2 = conn.next_seq("svc")
        conn.deliver_in_order("svc", s2, lambda: log.append(2))
        assert log == []  # message 2 overtook message 1: parked
        conn.deliver_in_order("svc", s1, lambda: log.append(1))
        assert log == [1, 2]  # release cascaded

    def test_long_reordering_cascade(self):
        conn = Connection()
        log = []
        seqs = [conn.next_seq("svc") for _ in range(5)]
        # Deliver 5, 3, 4, 2 out of order, then 1.
        for idx in (4, 2, 3, 1):
            conn.deliver_in_order("svc", seqs[idx], lambda i=idx: log.append(i))
        assert log == []
        conn.deliver_in_order("svc", seqs[0], lambda: log.append(0))
        assert log == [0, 1, 2, 3, 4]

    def test_directions_are_independent(self):
        conn = Connection()
        log = []
        fwd = conn.next_seq("downstream")
        back = conn.next_seq("upstream")
        # The backward direction is not gated by the forward one.
        conn.deliver_in_order("upstream", back, lambda: log.append("resp"))
        assert log == ["resp"]
        conn.deliver_in_order("downstream", fwd, lambda: log.append("req"))
        assert log == ["resp", "req"]

    def test_sequences_count_per_direction(self):
        conn = Connection()
        assert conn.next_seq("a") == 1
        assert conn.next_seq("b") == 1
        assert conn.next_seq("a") == 2


class TestNoDeadlockUnderReorderingNetwork:
    def test_blocking_app_completes_with_heavy_tailed_network(self):
        """Stress the scenario that motivated ordered delivery: a
        blocking (http/1.1-style) tier behind a highly variable network
        where later messages routinely overtake earlier ones. Every
        request must still complete."""
        from repro.distributions import LogNormal
        from repro.engine import Simulator
        from repro.hardware import NetworkFabric
        from repro.topology import Dispatcher, NodeOp, PathNode, PathTree
        from repro.workload import OpenLoopClient

        from ..topology.conftest import build_instance, build_world

        sim = Simulator(seed=13)
        wild_network = NetworkFabric(
            propagation=LogNormal.from_mean_cv(100e-6, 3.0),  # reorders a lot
            loopback=LogNormal.from_mean_cv(10e-6, 3.0),
        )
        cluster, deployment, dispatcher = build_world(sim, wild_network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=2e-4, tier="web")
        )
        deployment.set_pool("web", 4)  # few connections: heavy reuse
        tree = PathTree().chain(
            PathNode("web", "web", on_enter=NodeOp.block(),
                     on_leave=NodeOp.unblock())
        )
        dispatcher.add_tree(tree)
        client = OpenLoopClient(sim, dispatcher, arrivals=3000, max_requests=600)
        client.start()
        sim.run()
        assert client.requests_completed == 600
        for pool in deployment._pools.values():
            for conn in pool.connections:
                assert not conn.blocked
