"""Edge-case dispatcher tests: multiple roots, asymmetric netprocs,
message sizing, pool policies under traffic."""

import pytest

from repro.service import Request
from repro.topology import PathNode, PathTree

from .conftest import LOOPBACK, PROPAGATION, build_instance, build_world


class TestMultipleRoots:
    def test_parallel_roots_with_shared_sink(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network, machines=3)
        for i, tier in enumerate(("a", "b")):
            deployment.add_instance(
                build_instance(
                    sim, cluster, f"{tier}0", f"node{i}",
                    service_time=1e-3, tier=tier,
                )
            )
        deployment.add_instance(
            build_instance(sim, cluster, "sink0", "node2",
                           service_time=1e-4, tier="sink")
        )
        tree = PathTree()
        tree.add_node(PathNode("a", "a"))
        tree.add_node(PathNode("b", "b"))
        tree.add_node(PathNode("sink", "sink"))
        tree.add_edge("a", "sink")
        tree.add_edge("b", "sink")
        dispatcher.add_tree(tree)
        done = []
        dispatcher.submit(Request(0.0), done.append)
        sim.run()
        assert len(done) == 1
        # Both roots ran; the sink synchronised on them.
        assert deployment.instances("a")[0].jobs_completed == 1
        assert deployment.instances("b")[0].jobs_completed == 1


class TestMessageSizing:
    def test_request_size_drives_serialisation_delay(self, sim):
        from repro.distributions import Deterministic
        from repro.hardware import NetworkFabric

        # 1 MB/s wire makes the size effect visible.
        slow_net = NetworkFabric(
            propagation=Deterministic(0.0),
            loopback=Deterministic(0.0),
            bandwidth_bytes_per_s=1e6,
        )
        cluster, deployment, dispatcher = build_world(sim, slow_net)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-6, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        small, big = [], []
        dispatcher.submit(Request(0.0, size_bytes=100), small.append)
        dispatcher.submit(Request(0.0, size_bytes=10_000), big.append)
        sim.run()
        assert big[0].latency > small[0].latency

    def test_node_request_bytes_override_reaches_stage(self, sim, network):
        from repro.distributions import Deterministic
        from repro.service import (
            ExecutionPath, Microservice, PathSelector, SingleQueue, Stage,
        )

        cluster, deployment, dispatcher = build_world(sim, network)
        cores = cluster.machine("node0").allocate("svc0", 1)
        stage = Stage(
            "read", 0, SingleQueue(), per_byte=Deterministic(1e-6)
        )
        svc = Microservice(
            "svc0", sim, [stage],
            PathSelector([ExecutionPath(0, "p", [0])]),
            cores, machine_name="node0", tier="svc",
        )
        deployment.add_instance(svc)
        tree = PathTree()
        tree.add_node(PathNode("svc", "svc", request_bytes=500))
        dispatcher.add_tree(tree)
        done = []
        dispatcher.submit(Request(0.0, size_bytes=1), done.append)
        sim.run()
        # 500 bytes x 1us/byte = 0.5 ms of stage time, not 1 us.
        assert done[0].latency > 0.5e-3


class TestAsymmetricNetprocs:
    def test_only_receiver_side_netproc(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0",
                           service_time=1e-3, tier="web")
        )
        irq = build_instance(
            sim, cluster, "irq0", "node0", service_time=5e-6, tier="netproc"
        )
        deployment.set_netproc("node0", irq)
        # node1 (unused) and the client machine have none: requests flow.
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = []
        dispatcher.submit(Request(0.0), done.append)
        sim.run()
        assert len(done) == 1
        assert irq.jobs_completed == 2  # rx + tx on node0


class TestLeastOutstandingUnderTraffic:
    def test_policy_prefers_idle_replica(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        slow = build_instance(sim, cluster, "web0", "node0",
                              service_time=50e-3, tier="web")
        fast = build_instance(sim, cluster, "web1", "node1",
                              service_time=50e-3, tier="web")
        deployment.add_instance(slow)
        deployment.add_instance(fast)
        deployment.set_balancer("web", "least_outstanding")
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = []
        # Submit 4 requests back to back; least-outstanding must spread
        # them 2/2 even without completions in between.
        for _ in range(4):
            dispatcher.submit(Request(sim.now), done.append)
        sim.run()
        assert slow.jobs_completed == 2
        assert fast.jobs_completed == 2
