"""Tests for load balancers and the deployment registry."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import (
    Deployment,
    LeastOutstanding,
    RandomChoice,
    RoundRobin,
    make_load_balancer,
)

from .conftest import build_instance, build_world


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class _FakeInstance:
    def __init__(self, name, outstanding=0):
        self.name = name
        self.tier = "svc"
        self.jobs_accepted = outstanding
        self.jobs_completed = 0


class TestPolicies:
    def test_round_robin_rotates(self, rng):
        lb = RoundRobin()
        instances = [_FakeInstance(f"i{k}") for k in range(3)]
        picks = [lb.pick(instances, rng).name for _ in range(6)]
        assert picks == ["i0", "i1", "i2", "i0", "i1", "i2"]

    def test_random_covers_all(self, rng):
        lb = RandomChoice()
        instances = [_FakeInstance(f"i{k}") for k in range(3)]
        picks = {lb.pick(instances, rng).name for _ in range(200)}
        assert picks == {"i0", "i1", "i2"}

    def test_least_outstanding_prefers_idle(self, rng):
        lb = LeastOutstanding()
        busy = _FakeInstance("busy", outstanding=5)
        idle = _FakeInstance("idle", outstanding=0)
        assert lb.pick([busy, idle], rng) is idle

    def test_empty_instances_rejected(self, rng):
        with pytest.raises(TopologyError):
            RoundRobin().pick([], rng)

    def test_factory(self):
        assert isinstance(make_load_balancer("round_robin"), RoundRobin)
        with pytest.raises(TopologyError):
            make_load_balancer("astrology")


class TestDeployment:
    def test_register_and_lookup(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        b = build_instance(sim, cluster, "web1", "node1", tier="web")
        deployment.add_instance(a)
        deployment.add_instance(b)
        assert deployment.instances("web") == [a, b]
        assert deployment.services == ["web"]
        assert set(deployment.all_instances) == {a, b}

    def test_duplicate_instance_rejected(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        deployment.add_instance(a)
        with pytest.raises(TopologyError):
            deployment.add_instance(a)

    def test_unknown_service_rejected(self):
        with pytest.raises(TopologyError):
            Deployment().instances("ghost")

    def test_default_balancer_is_round_robin(self):
        deployment = Deployment()
        assert isinstance(deployment.balancer("web"), RoundRobin)

    def test_set_balancer(self):
        deployment = Deployment()
        deployment.set_balancer("web", "least_outstanding")
        assert isinstance(deployment.balancer("web"), LeastOutstanding)

    def test_pools_are_cached_per_edge(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        deployment.add_instance(a)
        deployment.set_pool("web", 4)
        p1 = deployment.pool_between("client", a)
        p2 = deployment.pool_between("client", a)
        assert p1 is p2
        assert len(p1) == 4

    def test_pool_size_validation(self):
        with pytest.raises(TopologyError):
            Deployment().set_pool("web", 0)

    def test_netproc_registration(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        np_inst = build_instance(sim, cluster, "netproc0", "node0", tier="netproc")
        deployment.set_netproc("node0", np_inst)
        assert deployment.netproc("node0") is np_inst
        assert deployment.netproc("node1") is None
        with pytest.raises(TopologyError):
            deployment.set_netproc("node0", np_inst)
