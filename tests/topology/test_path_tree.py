"""Tests for the path-node DAG."""

import pytest

from repro.errors import TopologyError
from repro.topology import NodeOp, PathNode, PathTree


def node(name, service="svc", **kwargs):
    return PathNode(name, service, **kwargs)


class TestConstruction:
    def test_chain_builder(self):
        tree = PathTree().chain(node("a"), node("b"), node("c"))
        assert [n.name for n in tree.roots] == ["a"]
        assert [n.name for n in tree.sinks] == ["c"]
        assert [n.name for n in tree.children("a")] == ["b"]
        assert [n.name for n in tree.parents("b")] == ["a"]

    def test_duplicate_node_rejected(self):
        tree = PathTree()
        tree.add_node(node("a"))
        with pytest.raises(TopologyError):
            tree.add_node(node("a"))

    def test_edge_to_unknown_node_rejected(self):
        tree = PathTree()
        tree.add_node(node("a"))
        with pytest.raises(TopologyError):
            tree.add_edge("a", "ghost")

    def test_duplicate_edge_rejected(self):
        tree = PathTree()
        tree.add_node(node("a"))
        tree.add_node(node("b"))
        tree.add_edge("a", "b")
        with pytest.raises(TopologyError):
            tree.add_edge("a", "b")

    def test_empty_node_name_rejected(self):
        with pytest.raises(TopologyError):
            PathNode("", "svc")

    def test_missing_service_rejected(self):
        with pytest.raises(TopologyError):
            PathNode("a", "")


class TestFanInOut:
    def make_fanout(self, leaves=3):
        tree = PathTree()
        tree.add_node(node("proxy"))
        for i in range(leaves):
            tree.add_node(node(f"leaf{i}", service="leaf"))
            tree.add_edge("proxy", f"leaf{i}")
        tree.add_node(node("join", same_instance_as="proxy"))
        for i in range(leaves):
            tree.add_edge(f"leaf{i}", "join")
        return tree

    def test_fan_in_counts_parents(self):
        tree = self.make_fanout(3)
        assert tree.fan_in("join") == 3
        assert tree.fan_in("leaf0") == 1
        assert tree.fan_in("proxy") == 1  # roots still need one entry

    def test_roots_and_sinks(self):
        tree = self.make_fanout(3)
        assert [n.name for n in tree.roots] == ["proxy"]
        assert [n.name for n in tree.sinks] == ["join"]

    def test_validate_accepts_dag(self):
        self.make_fanout(4).validate()


class TestValidation:
    def test_empty_tree_rejected(self):
        with pytest.raises(TopologyError):
            PathTree().validate()

    def test_cycle_rejected(self):
        tree = PathTree()
        tree.add_node(node("a"))
        tree.add_node(node("b"))
        tree.add_node(node("root"))
        tree.add_edge("root", "a")
        tree.add_edge("a", "b")
        tree.add_edge("b", "a")
        with pytest.raises(TopologyError):
            tree.validate()

    def test_unknown_affinity_rejected(self):
        tree = PathTree()
        tree.add_node(node("a", same_instance_as="ghost"))
        with pytest.raises(TopologyError):
            tree.validate()

    def test_unknown_op_target_rejected(self):
        tree = PathTree()
        tree.add_node(node("a", on_leave=NodeOp.unblock("ghost")))
        with pytest.raises(TopologyError):
            tree.validate()

    def test_unknown_node_lookup(self):
        with pytest.raises(TopologyError):
            PathTree().node("nope")


class TestNodeOp:
    def test_factories(self):
        assert NodeOp.block().action == NodeOp.BLOCK
        assert NodeOp.unblock("x").connection_of == "x"

    def test_unknown_action_rejected(self):
        with pytest.raises(TopologyError):
            NodeOp("explode")


class TestMessageBytes:
    def test_inherits_request_size(self):
        import numpy as np

        n = node("a")
        assert n.message_bytes(700.0, np.random.default_rng(0)) == 700.0

    def test_static_override(self):
        import numpy as np

        n = node("a", request_bytes=612)
        assert n.message_bytes(700.0, np.random.default_rng(0)) == 612.0

    def test_distribution_override(self):
        import numpy as np
        from repro.distributions import Deterministic

        n = node("a", request_bytes=Deterministic(128))
        assert n.message_bytes(700.0, np.random.default_rng(0)) == 128.0
