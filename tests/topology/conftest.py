"""Shared builders for topology tests: tiny deterministic worlds."""

import pytest

from repro.distributions import Deterministic
from repro.engine import Simulator
from repro.hardware import Cluster, DvfsLadder, GHZ, Machine, NetworkFabric
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SingleQueue,
    Stage,
)
from repro.topology import Deployment, Dispatcher

LOOPBACK = 1e-6
PROPAGATION = 10e-6


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def network():
    return NetworkFabric(
        propagation=Deterministic(PROPAGATION),
        loopback=Deterministic(LOOPBACK),
        bandwidth_bytes_per_s=1e12,  # serialisation negligible
    )


def build_instance(
    sim,
    cluster,
    name,
    machine,
    service_time=1e-3,
    cores=1,
    tier=None,
):
    """A one-stage instance pinned to dedicated cores on *machine*."""
    core_set = cluster.machine(machine).allocate(name, cores)
    stage = Stage("proc", 0, SingleQueue(), base=Deterministic(service_time))
    selector = PathSelector([ExecutionPath(0, "only", [0])])
    return Microservice(
        name,
        sim,
        [stage],
        selector,
        core_set,
        machine_name=machine,
        tier=tier or name.rstrip("0123456789"),
    )


def build_world(sim, network, machines=2, cores=8):
    """Cluster + empty deployment + dispatcher."""
    ladder = DvfsLadder([1.2 * GHZ, 2.6 * GHZ])
    cluster = Cluster(network)
    for i in range(machines):
        cluster.add_machine(Machine(f"node{i}", cores, ladder))
    deployment = Deployment()
    dispatcher = Dispatcher(sim, deployment, network)
    return cluster, deployment, dispatcher
