"""LeastOutstanding balancer: deterministic tie-breaking and
health-awareness (down/draining replicas are never picked)."""

import numpy as np
import pytest

from repro.topology import LeastOutstanding, NoHealthyInstance

from .conftest import build_instance, build_world


class _Stub:
    """Instance stand-in exposing only what the balancer reads."""

    def __init__(self, name, pending=0, healthy=True):
        self.name = name
        self.pending_dispatch = pending
        self.healthy = healthy


class TestTieBreaking:
    def test_ties_break_by_deployment_order(self):
        lb = LeastOutstanding()
        replicas = [_Stub("a"), _Stub("b"), _Stub("c")]
        for _ in range(5):
            assert lb.pick(replicas, np.random.default_rng(0)) is replicas[0]

    def test_tie_break_is_rng_independent(self):
        """Selection must not consume the RNG stream: any seed, same
        pick, so simulations stay reproducible when policies change."""
        replicas = [_Stub("a", 2), _Stub("b", 2), _Stub("c", 7)]
        picks = {
            LeastOutstanding().pick(
                replicas, np.random.default_rng(seed)
            ).name
            for seed in range(20)
        }
        assert picks == {"a"}

    def test_prefers_fewest_outstanding(self):
        lb = LeastOutstanding()
        replicas = [_Stub("a", 3), _Stub("b", 1), _Stub("c", 2)]
        assert lb.pick(replicas, np.random.default_rng(0)).name == "b"


class TestHealthAwareness:
    def test_never_picks_down_instance(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        idle = build_instance(sim, cluster, "web0", "node0", tier="web")
        busy = build_instance(sim, cluster, "web1", "node1", tier="web")
        deployment.add_instance(idle)
        deployment.add_instance(busy)
        busy.pending_dispatch = 9
        idle.crash()
        lb = LeastOutstanding()
        rng = np.random.default_rng(0)
        # The idle replica is down: the busy one must win regardless of
        # its backlog.
        for _ in range(10):
            assert lb.pick([idle, busy], rng) is busy

    def test_never_picks_draining_instance(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        b = build_instance(sim, cluster, "web1", "node1", tier="web")
        a.start_draining()
        b.pending_dispatch = 50
        assert LeastOutstanding().pick(
            [a, b], np.random.default_rng(0)
        ) is b

    def test_all_unhealthy_raises(self):
        lb = LeastOutstanding()
        replicas = [_Stub("a", healthy=False), _Stub("b", healthy=False)]
        with pytest.raises(NoHealthyInstance):
            lb.pick(replicas, np.random.default_rng(0))

    def test_recovered_instance_rejoins(self, sim, network):
        cluster, deployment, _ = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        b = build_instance(sim, cluster, "web1", "node1", tier="web")
        b.pending_dispatch = 5
        a.crash()
        lb = LeastOutstanding()
        rng = np.random.default_rng(0)
        assert lb.pick([a, b], rng) is b
        a.recover()
        assert lb.pick([a, b], rng) is a
