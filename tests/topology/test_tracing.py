"""Tests for per-request tracing in the dispatcher."""

import pytest

from repro.engine import Simulator
from repro.hardware import NetworkFabric
from repro.distributions import Deterministic
from repro.topology import Dispatcher, PathNode, PathTree
from repro.service import Request

from .conftest import build_instance, build_world


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def network():
    return NetworkFabric(
        propagation=Deterministic(10e-6), loopback=Deterministic(1e-6)
    )


def traced_world(sim, network):
    cluster, deployment, _ = build_world(sim, network)
    deployment.add_instance(
        build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
    )
    deployment.add_instance(
        build_instance(sim, cluster, "db0", "node1", service_time=2e-3, tier="db")
    )
    dispatcher = Dispatcher(sim, deployment, network, trace=True)
    dispatcher.add_tree(
        PathTree().chain(PathNode("web", "web"), PathNode("db", "db"))
    )
    return dispatcher


class TestTracing:
    def test_trace_records_every_node(self, sim, network):
        dispatcher = traced_world(sim, network)
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        trace = req.metadata["trace"]
        assert [t[0] for t in trace] == ["web", "db"]
        assert [t[1] for t in trace] == ["web0", "db0"]

    def test_trace_timings_are_causal(self, sim, network):
        dispatcher = traced_world(sim, network)
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        (w_name, _, w_enter, w_leave), (d_name, _, d_enter, d_leave) = (
            req.metadata["trace"]
        )
        assert w_enter <= w_leave <= d_enter <= d_leave
        # web service time is 1ms; its span must cover it.
        assert w_leave - w_enter >= 1e-3

    def test_tracing_disabled_by_default(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        assert "trace" not in req.metadata
