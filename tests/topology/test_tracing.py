"""Tests for per-request tracing in the dispatcher.

Covers the attempt-aware span model: every node visit of every attempt
gets its own span, resilience actions leave events on the trace, and
the enter-timestamp clobbering bug of the legacy flat
``trace_enter[node]`` dict stays fixed (a retry or hedge re-visit of a
node must never inherit the earlier attempt's timings).
"""

import pytest

from repro.engine import Simulator
from repro.hardware import NetworkFabric
from repro.distributions import Deterministic
from repro.resilience import HedgePolicy, ResiliencePolicy, RetryPolicy
from repro.telemetry import SPAN_CANCELLED, SPAN_OK, Trace, TraceConfig
from repro.topology import Dispatcher, PathNode, PathTree
from repro.service import Request

from .conftest import build_instance, build_world


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def network():
    return NetworkFabric(
        propagation=Deterministic(10e-6), loopback=Deterministic(1e-6)
    )


def traced_world(sim, network, trace=True):
    cluster, deployment, _ = build_world(sim, network)
    deployment.add_instance(
        build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
    )
    deployment.add_instance(
        build_instance(sim, cluster, "db0", "node1", service_time=2e-3, tier="db")
    )
    dispatcher = Dispatcher(sim, deployment, network, trace=trace)
    dispatcher.add_tree(
        PathTree().chain(PathNode("web", "web"), PathNode("db", "db"))
    )
    return dispatcher


def two_replica_world(sim, network, slow=50e-3, fast=1e-3):
    """Round-robin pair: attempt 1 lands on the slow replica, the
    retry/hedge on the fast one."""
    cluster, deployment, dispatcher = build_world(sim, network)
    deployment.add_instance(
        build_instance(sim, cluster, "web0", "node0",
                       service_time=slow, tier="web")
    )
    deployment.add_instance(
        build_instance(sim, cluster, "web1", "node1",
                       service_time=fast, tier="web")
    )
    dispatcher.trace = True
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    return dispatcher


class TestTracing:
    def test_trace_records_every_node(self, sim, network):
        dispatcher = traced_world(sim, network)
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        trace = req.metadata["trace"]
        assert isinstance(trace, Trace)
        assert [s.node for s in trace.spans] == ["web", "db"]
        assert [s.instance for s in trace.spans] == ["web0", "db0"]
        assert all(s.status == SPAN_OK for s in trace.spans)
        assert trace.outcome == "ok"
        assert trace.completed_at == pytest.approx(req.completed_at)

    def test_trace_timings_are_causal(self, sim, network):
        dispatcher = traced_world(sim, network)
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        web, db = req.metadata["trace"].spans
        assert web.enter <= web.leave <= db.enter <= db.leave
        # web service time is 1ms; its span must cover it.
        assert web.duration >= 1e-3

    def test_span_breakdown_sums_to_duration(self, sim, network):
        dispatcher = traced_world(sim, network)
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        for span in req.metadata["trace"].spans:
            assert span.network >= 0
            assert span.queueing >= 0
            assert span.service_time >= 0
            assert span.network + span.queueing + span.service_time == (
                pytest.approx(span.duration)
            )
            # Deterministic network: dispatch hop is the propagation delay.
            assert span.network == pytest.approx(10e-6, rel=0.5)

    def test_tracing_disabled_by_default(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        assert "trace" not in req.metadata
        assert dispatcher.tracer is None
        assert dispatcher.trace is False

    def test_sampled_out_request_carries_no_trace(self, sim, network):
        dispatcher = traced_world(
            sim, network, trace=TraceConfig(sample_rate=0.0)
        )
        req = Request(0.0)
        dispatcher.submit(req)
        sim.run()
        assert "trace" not in req.metadata
        assert dispatcher.tracer.unsampled == 1
        assert dispatcher.tracer.traces == []

    def test_trace_config_exposed_and_tracer_collects(self, sim, network):
        config = TraceConfig(sample_rate=1.0, breakdown=False)
        dispatcher = traced_world(sim, network, trace=config)
        for i in range(3):
            dispatcher.submit(Request(created_at=i * 1e-2))
        sim.run()
        assert dispatcher.trace is config
        assert len(dispatcher.tracer.traces) == 3
        # breakdown off: whole span booked as service time.
        span = dispatcher.tracer.traces[0].spans[0]
        assert span.network == 0.0 and span.queueing == 0.0
        assert span.service_time == pytest.approx(span.duration)


class TestAttemptSpans:
    """Regression tests for the retry/hedge trace corruption bug."""

    def test_retry_attempts_get_separate_spans(self, sim, network):
        dispatcher = two_replica_world(sim, network)
        policy = ResiliencePolicy(
            timeout=10e-3,
            retry=RetryPolicy(max_attempts=2, backoff_base=1e-3, jitter=0.0),
        )
        done = []
        req = Request(0.0)
        dispatcher.submit(req, done.append, "client", "client", policy)
        sim.run()
        assert done[0].outcome == "ok"
        trace = req.metadata["trace"]
        assert trace.attempts == 2
        (first,) = trace.spans_for_attempt(0)
        (second,) = trace.spans_for_attempt(1)
        # The failed attempt's span keeps its own timestamps: it opened
        # at dispatch and closed at the timeout cancellation — not at
        # the retry's (later) enter, which the legacy flat dict
        # silently substituted.
        assert first.status == SPAN_CANCELLED
        assert first.leave == pytest.approx(10e-3)
        assert second.status == SPAN_OK
        assert second.enter > first.leave  # retry launched after backoff
        # The winning span closes just before the response hop home.
        assert first.leave < second.leave <= done[0].completed_at
        # Only the winning attempt's span is a "completed" span.
        assert trace.completed_spans() == [second]
        assert trace.completed_spans(include_cancelled=True) == [
            first, second,
        ]

    def test_hedge_loser_closes_with_own_timestamps(self, sim, network):
        dispatcher = two_replica_world(sim, network)
        policy = ResiliencePolicy(hedge=HedgePolicy(delay=5e-3))
        done = []
        req = Request(0.0)
        dispatcher.submit(req, done.append, "client", "client", policy)
        sim.run()
        assert done[0].outcome == "ok"
        assert dispatcher.hedges_issued == 1
        trace = req.metadata["trace"]
        assert trace.attempts == 2
        (loser,) = trace.spans_for_attempt(0)
        (winner,) = trace.spans_for_attempt(1)
        assert winner.status == SPAN_OK
        assert loser.status == SPAN_CANCELLED
        # The loser was cancelled when the winner resolved — well
        # before its own 50ms service time would have completed.
        assert loser.closed
        assert loser.leave == pytest.approx(done[0].completed_at)
        assert loser.leave - loser.enter < 50e-3
        # The hedge opened its own span ~delay later.
        assert winner.enter >= loser.enter + 5e-3

    def test_resilience_events_recorded(self, sim, network):
        dispatcher = two_replica_world(sim, network)
        policy = ResiliencePolicy(
            timeout=10e-3,
            retry=RetryPolicy(max_attempts=2, backoff_base=1e-3, jitter=0.0),
        )
        req = Request(0.0)
        dispatcher.submit(req, None, "client", "client", policy)
        sim.run()
        names = [e.name for e in req.metadata["trace"].events]
        assert "timeout_fired" in names
        assert "retry_scheduled" in names
        assert "attempt_cancelled" in names
        assert names[-1] == "response_sent"
        retry = next(
            e for e in req.metadata["trace"].events
            if e.name == "retry_scheduled"
        )
        assert retry.attrs["attempt"] == 1
