"""End-to-end dispatcher behaviour: traversal, fan-in, affinity,
blocking, netproc routing, tree selection."""

import pytest

from repro.errors import TopologyError
from repro.service import Request
from repro.topology import NodeOp, PathNode, PathTree

from .conftest import LOOPBACK, PROPAGATION, build_instance, build_world


def submit(dispatcher, sim, n=1, request_type="default", size=0.0, spacing=0.0):
    done = []
    for i in range(n):
        req = Request(
            created_at=sim.now + i * spacing,
            request_type=request_type,
            size_bytes=size,
        )
        sim.schedule_at(req.created_at, dispatcher.submit, req, done.append)
    return done


class TestSingleNode:
    def test_request_completes_with_network_hops(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = submit(dispatcher, sim)
        sim.run()
        assert len(done) == 1
        # client->node0 hop + 1ms service + node0->client hop.
        assert done[0].latency == pytest.approx(2 * PROPAGATION + 1e-3)

    def test_dispatcher_counters(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", tier="web")
        )
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        submit(dispatcher, sim, n=3)
        sim.run()
        assert dispatcher.requests_submitted == 3
        assert dispatcher.requests_completed == 3


class TestChain:
    def test_two_tier_latency_adds_up(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "db0", "node1", service_time=2e-3, tier="db")
        )
        dispatcher.add_tree(
            PathTree().chain(PathNode("web", "web"), PathNode("db", "db"))
        )
        done = submit(dispatcher, sim)
        sim.run()
        # hops: client->web, web->db, db->client; services: 1ms + 2ms.
        assert done[0].latency == pytest.approx(3 * PROPAGATION + 3e-3)

    def test_colocated_tiers_use_loopback(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        )
        deployment.add_instance(
            build_instance(sim, cluster, "db0", "node0", service_time=2e-3, tier="db")
        )
        dispatcher.add_tree(
            PathTree().chain(PathNode("web", "web"), PathNode("db", "db"))
        )
        done = submit(dispatcher, sim)
        sim.run()
        assert done[0].latency == pytest.approx(2 * PROPAGATION + LOOPBACK + 3e-3)


class TestFanoutFanIn:
    def build_fanout(self, sim, network, leaves=3, leaf_times=None):
        cluster, deployment, dispatcher = build_world(sim, network, machines=4)
        deployment.add_instance(
            build_instance(sim, cluster, "proxy0", "node0", service_time=1e-4, tier="proxy")
        )
        leaf_times = leaf_times or [1e-3] * leaves
        for i in range(leaves):
            deployment.add_instance(
                build_instance(
                    sim, cluster, f"leaf{i}", f"node{1 + i % 3}",
                    service_time=leaf_times[i], tier=f"leaftier{i}",
                )
            )
        tree = PathTree()
        tree.add_node(PathNode("proxy", "proxy"))
        for i in range(leaves):
            tree.add_node(PathNode(f"leaf{i}", f"leaftier{i}"))
            tree.add_edge("proxy", f"leaf{i}")
        tree.add_node(PathNode("join", "proxy", same_instance_as="proxy"))
        for i in range(leaves):
            tree.add_edge(f"leaf{i}", "join")
        dispatcher.add_tree(tree)
        return cluster, deployment, dispatcher

    def test_join_waits_for_slowest_leaf(self, sim, network):
        _, _, dispatcher = self.build_fanout(
            sim, network, leaves=3, leaf_times=[1e-3, 5e-3, 2e-3]
        )
        done = submit(dispatcher, sim)
        sim.run()
        # Slowest leaf (5ms) dominates; join runs on the proxy (1e-4).
        expected = (
            PROPAGATION          # client -> proxy
            + 1e-4               # proxy
            + PROPAGATION        # proxy -> slowest leaf
            + 5e-3               # slowest leaf
            + PROPAGATION        # leaf -> proxy (join)
            + 1e-4               # join processing
            + PROPAGATION        # proxy -> client
        )
        assert done[0].latency == pytest.approx(expected)

    def test_all_leaves_receive_a_copy(self, sim, network):
        _, deployment, dispatcher = self.build_fanout(sim, network, leaves=3)
        submit(dispatcher, sim, n=2)
        sim.run()
        for i in range(3):
            leaf = deployment.instances(f"leaftier{i}")[0]
            assert leaf.jobs_completed == 2

    def test_join_runs_once_per_request(self, sim, network):
        _, deployment, dispatcher = self.build_fanout(sim, network, leaves=3)
        submit(dispatcher, sim, n=1)
        sim.run()
        proxy = deployment.instances("proxy")[0]
        # proxy node + join node = 2 jobs on the proxy instance.
        assert proxy.jobs_completed == 2


class TestAffinity:
    def test_same_instance_as_reuses_instance(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        b = build_instance(sim, cluster, "web1", "node1", tier="web")
        deployment.add_instance(a)
        deployment.add_instance(b)
        tree = PathTree().chain(
            PathNode("first", "web"),
            PathNode("again", "web", same_instance_as="first"),
        )
        dispatcher.add_tree(tree)
        submit(dispatcher, sim, n=4)
        sim.run()
        # Round-robin spreads requests 2/2, and each revisit lands on the
        # same instance: accepted counts must be even per instance.
        assert a.jobs_completed == 4
        assert b.jobs_completed == 4

    def test_unvisited_affinity_rejected(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(build_instance(sim, cluster, "web0", "node0", tier="web"))
        tree = PathTree()
        tree.add_node(PathNode("root", "web", same_instance_as="root"))
        dispatcher.add_tree(tree)
        req = Request(0.0)
        with pytest.raises(TopologyError):
            dispatcher.submit(req)


class TestBlockingOps:
    def build_blocking_world(self, sim, network, pool_size=1):
        """Single-tier http1.1-style service: node blocks its incoming
        connection on enter, unblocks on leave."""
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        )
        deployment.set_pool("web", pool_size)
        tree = PathTree().chain(
            PathNode(
                "web", "web",
                on_enter=NodeOp.block(),
                on_leave=NodeOp.unblock(),
            )
        )
        dispatcher.add_tree(tree)
        return deployment, dispatcher

    def test_one_connection_serialises_requests(self, sim, network):
        _, dispatcher = self.build_blocking_world(sim, network, pool_size=1)
        done = submit(dispatcher, sim, n=2)
        sim.run()
        latencies = sorted(r.latency for r in done)
        base = 2 * PROPAGATION + 1e-3
        assert latencies[0] == pytest.approx(base)
        # Request 2 sat blocked until request 1 finished processing (the
        # server resumes reading once it has written the response), so it
        # pays request 1's full service time on top of its own.
        assert latencies[1] == pytest.approx(base + 1e-3)

    def test_two_connections_run_in_parallel(self, sim, network):
        _, dispatcher = self.build_blocking_world(sim, network, pool_size=2)
        done = submit(dispatcher, sim, n=2)
        sim.run()
        # web0 has 1 core: second request queues for CPU but not for the
        # connection, so it finishes ~1ms (one service time) later.
        latencies = sorted(r.latency for r in done)
        assert latencies[1] == pytest.approx(latencies[0] + 1e-3)


class TestNetprocRouting:
    def test_cross_machine_messages_traverse_netproc(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(
            build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        )
        irq = build_instance(
            sim, cluster, "netproc0", "node0", service_time=5e-6, tier="netproc"
        )
        deployment.set_netproc("node0", irq)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        done = submit(dispatcher, sim)
        sim.run()
        # rx at node0 and tx back to the client: two netproc jobs.
        assert irq.jobs_completed == 2
        assert done[0].latency == pytest.approx(2 * PROPAGATION + 1e-3 + 2 * 5e-6)

    def test_loopback_bypasses_netproc(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        web = build_instance(sim, cluster, "web0", "node0", service_time=1e-3, tier="web")
        db = build_instance(sim, cluster, "db0", "node0", service_time=1e-3, tier="db")
        deployment.add_instance(web)
        deployment.add_instance(db)
        irq = build_instance(
            sim, cluster, "netproc0", "node0", service_time=5e-6, tier="netproc"
        )
        deployment.set_netproc("node0", irq)
        dispatcher.add_tree(
            PathTree().chain(PathNode("web", "web"), PathNode("db", "db"))
        )
        submit(dispatcher, sim)
        sim.run()
        # Only the client-facing hops cross machines: rx + tx = 2 jobs;
        # the web->db hop is loopback.
        assert irq.jobs_completed == 2


class TestTreeSelection:
    def test_request_type_routing(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        a = build_instance(sim, cluster, "fast0", "node0", service_time=1e-3, tier="fast")
        b = build_instance(sim, cluster, "slow0", "node1", service_time=5e-3, tier="slow")
        deployment.add_instance(a)
        deployment.add_instance(b)
        dispatcher.add_tree(
            PathTree("fast").chain(PathNode("fast", "fast")), request_type="read"
        )
        dispatcher.add_tree(
            PathTree("slow").chain(PathNode("slow", "slow")), request_type="write"
        )
        reads = submit(dispatcher, sim, n=1, request_type="read")
        writes = submit(dispatcher, sim, n=1, request_type="write")
        sim.run()
        assert reads[0].latency < writes[0].latency

    def test_probabilistic_tree_split(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        a = build_instance(sim, cluster, "a0", "node0", tier="a")
        b = build_instance(sim, cluster, "b0", "node1", tier="b")
        deployment.add_instance(a)
        deployment.add_instance(b)
        dispatcher.add_tree(PathTree("a").chain(PathNode("a", "a")), probability=0.7)
        dispatcher.add_tree(PathTree("b").chain(PathNode("b", "b")), probability=0.3)
        submit(dispatcher, sim, n=2000, spacing=1e-3)
        sim.run()
        fraction = a.jobs_completed / 2000
        assert fraction == pytest.approx(0.7, abs=0.04)

    def test_bad_probability_sum_rejected(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(build_instance(sim, cluster, "a0", "node0", tier="a"))
        dispatcher.add_tree(PathTree("x").chain(PathNode("a", "a")), probability=0.5)
        dispatcher.add_tree(PathTree("y").chain(PathNode("a2", "a")), probability=0.2)
        with pytest.raises(TopologyError):
            dispatcher.submit(Request(0.0))

    def test_no_tree_rejected(self, sim, network):
        _, _, dispatcher = build_world(sim, network)
        with pytest.raises(TopologyError):
            dispatcher.submit(Request(0.0))

    def test_duplicate_request_type_rejected(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network)
        deployment.add_instance(build_instance(sim, cluster, "a0", "node0", tier="a"))
        dispatcher.add_tree(PathTree("x").chain(PathNode("a", "a")), request_type="r")
        with pytest.raises(TopologyError):
            dispatcher.add_tree(
                PathTree("y").chain(PathNode("a2", "a")), request_type="r"
            )


class TestRoundRobinAcrossReplicas:
    def test_load_spreads_evenly(self, sim, network):
        cluster, deployment, dispatcher = build_world(sim, network, machines=2)
        a = build_instance(sim, cluster, "web0", "node0", tier="web")
        b = build_instance(sim, cluster, "web1", "node1", tier="web")
        deployment.add_instance(a)
        deployment.add_instance(b)
        dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
        submit(dispatcher, sim, n=10)
        sim.run()
        assert a.jobs_completed == 5
        assert b.jobs_completed == 5
