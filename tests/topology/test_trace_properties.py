"""Property-style trace-consistency checks across topologies.

Whatever mix of retries, hedges, and fan-out a run produces, every
sampled trace must satisfy:

* exactly one span per (attempt, node) visit — sibling attempts never
  share or clobber spans;
* every closed span's ``network + queueing + service`` breakdown sums
  to its duration, each part non-negative;
* the critical-path chain is time-ordered and non-overlapping, and the
  chain plus its gaps (lead-in from submission, inter-span waits, and
  the response leg) decomposes the end-to-end latency exactly.
"""

import pytest

from repro.analysis import critical_path
from repro.engine import Simulator
from repro.hardware import NetworkFabric
from repro.distributions import Deterministic, Exponential
from repro.resilience import HedgePolicy, ResiliencePolicy, RetryPolicy
from repro.service import Request
from repro.topology import PathNode, PathTree

from .conftest import build_instance, build_world


def retry_scenario(sim, network):
    cluster, deployment, dispatcher = build_world(sim, network)
    deployment.add_instance(
        build_instance(sim, cluster, "web0", "node0",
                       service_time=20e-3, tier="web")
    )
    deployment.add_instance(
        build_instance(sim, cluster, "web1", "node1",
                       service_time=1e-3, tier="web")
    )
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    policy = ResiliencePolicy(
        timeout=5e-3,
        retry=RetryPolicy(max_attempts=3, backoff_base=1e-3, jitter=0.0),
    )
    return dispatcher, policy


def hedge_scenario(sim, network):
    cluster, deployment, dispatcher = build_world(sim, network)
    deployment.add_instance(
        build_instance(sim, cluster, "web0", "node0",
                       service_time=30e-3, tier="web")
    )
    deployment.add_instance(
        build_instance(sim, cluster, "web1", "node1",
                       service_time=1e-3, tier="web")
    )
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    return dispatcher, ResiliencePolicy(hedge=HedgePolicy(delay=3e-3))


def fanout_scenario(sim, network):
    cluster, deployment, dispatcher = build_world(sim, network, machines=4)
    deployment.add_instance(
        build_instance(sim, cluster, "agg0", "node0",
                       service_time=1e-4, tier="agg")
    )
    for i, service_time in enumerate([1e-3, 4e-3, 2e-3]):
        deployment.add_instance(
            build_instance(sim, cluster, f"leaf{i}0", f"node{i + 1}",
                           service_time=service_time, tier=f"leaf{i}")
        )
    tree = PathTree()
    tree.add_node(PathNode("root", "agg"))
    for i in range(3):
        tree.add_node(PathNode(f"leaf{i}", f"leaf{i}"))
        tree.add_edge("root", f"leaf{i}")
    tree.add_node(PathNode("join", "agg", same_instance_as="root"))
    for i in range(3):
        tree.add_edge(f"leaf{i}", "join")
    dispatcher.add_tree(tree)
    return dispatcher, None


SCENARIOS = {
    "retry": retry_scenario,
    "hedge": hedge_scenario,
    "fanout": fanout_scenario,
}


def check_trace(trace):
    # One span per (attempt, node).
    keys = [(s.attempt, s.node) for s in trace.spans]
    assert len(keys) == len(set(keys)), f"duplicate attempt spans: {keys}"
    # Every span closed with a consistent breakdown.
    for span in trace.spans:
        assert span.closed, f"span {span.node} left open"
        assert span.duration >= 0
        assert span.network >= 0
        assert span.queueing >= 0
        assert span.service_time >= 0
        assert span.network + span.queueing + span.service_time == (
            pytest.approx(span.duration, abs=1e-12)
        )
    # Events sit inside the request's lifetime.
    for event in trace.events:
        assert trace.created_at <= event.t <= trace.completed_at


def check_critical_path(request):
    trace = request.metadata["trace"]
    path = critical_path(request)
    assert path, "empty critical path"
    # Chain is time-ordered and non-overlapping.
    for earlier, later in zip(path, path[1:]):
        assert earlier.leave <= later.enter + 1e-12
    # Chain + gaps decomposes the end-to-end latency exactly: lead-in
    # (submission to first span), the chain's own window, and the
    # response leg after the anchor span.
    chain = sum(s.duration for s in path)
    gaps = sum(
        later.enter - earlier.leave
        for earlier, later in zip(path, path[1:])
    )
    lead_in = path[0].enter - trace.created_at
    response = trace.completed_at - path[-1].leave
    assert lead_in >= -1e-12
    assert gaps >= -1e-12
    assert response >= -1e-12
    latency = request.completed_at - request.created_at
    assert lead_in + chain + gaps + response == pytest.approx(latency)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_trace_invariants_hold(scenario, seed):
    sim = Simulator(seed=seed)
    network = NetworkFabric(
        propagation=Exponential(10e-6), loopback=Deterministic(1e-6)
    )
    dispatcher, policy = SCENARIOS[scenario](sim, network)
    dispatcher.trace = True
    done = []
    for i in range(25):
        req = Request(created_at=i * 2e-3)
        sim.schedule_at(
            req.created_at, dispatcher.submit, req, done.append,
            "client", "client", policy,
        )
    sim.run()
    assert len(done) == 25
    checked = 0
    for req in done:
        if req.outcome != "ok":
            continue  # timed-out requests have no resolution latency
        trace = req.metadata["trace"]
        check_trace(trace)
        check_critical_path(req)
        checked += 1
    assert checked > 0
    # The scenarios must actually exercise multi-attempt traces.
    if scenario in ("retry", "hedge"):
        assert any(
            r.metadata["trace"].attempts > 1 for r in done
            if "trace" in r.metadata
        )
