"""Property-based tests on the inter-microservice layer: random
layered DAGs must conserve requests and visit counts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Deterministic
from repro.engine import Simulator
from repro.hardware import Cluster, Machine, NetworkFabric
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    Request,
    SimpleModel,
    SingleQueue,
    Stage,
)
from repro.topology import Deployment, Dispatcher, PathNode, PathTree


def build_random_dag_world(layer_sizes, edge_choices):
    """A world with one service per node of a layered DAG.

    *edge_choices* drives which parents each node connects to (at least
    one per node, from the previous layer).
    """
    sim = Simulator(seed=0)
    network = NetworkFabric(
        propagation=Deterministic(1e-6), loopback=Deterministic(1e-6)
    )
    cluster = Cluster(network)
    machine = cluster.add_machine(
        Machine("node0", sum(layer_sizes) + 1)
    )
    deployment = Deployment()

    def make(tier):
        cores = machine.allocate(tier, 1)
        stage = Stage("s", 0, SingleQueue(), base=Deterministic(1e-6))
        svc = Microservice(
            tier, sim, [stage],
            PathSelector([ExecutionPath(0, "p", [0])]),
            cores, model=SimpleModel(), machine_name="node0", tier=tier,
        )
        deployment.add_instance(svc)
        return svc

    tree = PathTree("random")
    make("root")
    tree.add_node(PathNode("root", "root"))
    previous_layer = ["root"]
    counter = 0
    edge_iter = iter(edge_choices)
    for size in layer_sizes:
        layer = []
        for _ in range(size):
            name = f"n{counter}"
            counter += 1
            make(name)
            tree.add_node(PathNode(name, name))
            # Connect to a nonempty subset of the previous layer.
            n_parents = (next(edge_iter, 0) % len(previous_layer)) + 1
            for p in range(n_parents):
                tree.add_edge(previous_layer[p], name)
            layer.append(name)
        previous_layer = layer
    tree.validate()
    dispatcher = Dispatcher(sim, deployment, network)
    dispatcher.add_tree(tree)
    return sim, dispatcher, deployment, tree


layer_shapes = st.lists(st.integers(1, 4), min_size=1, max_size=4)
edges = st.lists(st.integers(0, 10), min_size=20, max_size=20)


class TestRandomDagConservation:
    @settings(max_examples=25, deadline=None)
    @given(layer_shapes, edges, st.integers(1, 5))
    def test_every_request_completes_and_visits_match(
        self, layers, edge_choices, n_requests
    ):
        sim, dispatcher, deployment, tree = build_random_dag_world(
            layers, edge_choices
        )
        done = []
        for i in range(n_requests):
            req = Request(created_at=i * 1e-4)
            sim.schedule_at(req.created_at, dispatcher.submit, req, done.append)
        sim.run()
        # Conservation: every request completes exactly once.
        assert len(done) == n_requests
        assert dispatcher.requests_completed == n_requests
        # Visit counts: every path node runs exactly once per request
        # (fan-in fires on the last parent; fan-out copies per child).
        for node in tree.nodes:
            instance = deployment.instances(node.service)[0]
            assert instance.jobs_completed == n_requests, node.name
        # Nothing left queued anywhere.
        for instance in deployment.all_instances:
            assert instance.queued_jobs == 0
