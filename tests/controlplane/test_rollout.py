"""Deploy strategies: rolling updates and SLO-gated canaries."""

import pytest

from repro.controlplane import CanaryRollout, RollingUpdate
from repro.errors import ConfigError
from repro.service.microservice import STATE_UP
from repro.telemetry.slo import LATENCY, SLO
from repro.workload import OpenLoopClient

from .conftest import managed_world, make_factory, sim  # noqa: F401

SLOS = [SLO(LATENCY, threshold=10e-3, percentile=95.0, window=0.5)]


def drive(sim, dispatcher, qps=300.0, stop_at=4.0):
    client = OpenLoopClient(sim, dispatcher, qps, stop_at=stop_at)
    client.start()
    return client


class TestRollingUpdate:
    def test_rolls_out_and_reports(self, sim):
        _, deployment, dispatcher, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=5.0)
        rollout = RollingUpdate(cp, "web", "v2", factory=make_factory(sim))
        sim.schedule(0.1, rollout.start)
        drive(sim, dispatcher, stop_at=5.0)
        sim.run(until=5.5)
        assert rollout.result.succeeded
        assert set(rollout.result.final_versions.values()) == {"v2"}
        assert rollout.result.decided_at is not None

    def test_double_start_rejected(self, sim):
        _, _, _, cp, _ = managed_world(sim)
        rollout = RollingUpdate(cp, "web", "v2")
        rollout.start()
        with pytest.raises(ConfigError, match="already started"):
            rollout.start()


class TestCanaryRollback:
    def test_regressed_canary_breaches_and_rolls_back(self, sim):
        """The acceptance scenario: a canary 30x slower than stable
        breaches its cohort-scoped SLO; the rollout rolls back and the
        stable fleet still runs the old version."""
        _, deployment, dispatcher, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=4.0)
        bad = make_factory(sim, mean_service=30e-3)
        rollout = CanaryRollout(
            cp, "web", "v2", bad, slos=SLOS,
            observe_for=1.5, min_samples=10,
        )
        sim.schedule(0.5, rollout.start)
        client = drive(sim, dispatcher)
        sim.run(until=5.0)

        result = rollout.result
        assert result.rolled_back
        assert result.breaches >= 1
        assert set(result.final_versions.values()) == {"v1"}
        # The spec's target version never moved off the stable one.
        assert cp.spec("web").version == "v1"
        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        assert len(up) == 3
        assert all(cp.version_of(r.name) == "v1" for r in up)
        # Traffic kept flowing throughout the bad deploy.
        assert client.requests_completed == client.requests_sent

    def test_rollback_is_recorded_in_events(self, sim):
        _, _, dispatcher, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=4.0)
        rollout = CanaryRollout(
            cp, "web", "v2", make_factory(sim, 30e-3), slos=SLOS,
            observe_for=2.0, min_samples=10,
        )
        sim.schedule(0.5, rollout.start)
        drive(sim, dispatcher)
        sim.run(until=4.0)
        names = [e.name for e in cp.events]
        assert "canary_start" in names
        assert "canary_rollback" in names
        assert "canary_promote" not in names


class TestCanaryPromotion:
    def test_clean_canary_promotes_and_rolls_fleet(self, sim):
        _, deployment, dispatcher, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=8.0)
        good = make_factory(sim)
        rollout = CanaryRollout(
            cp, "web", "v2", good, slos=SLOS,
            observe_for=1.0, min_samples=10,
        )
        sim.schedule(0.2, rollout.start)
        drive(sim, dispatcher, stop_at=8.0)
        sim.run(until=8.5)
        assert rollout.result.succeeded
        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        assert len(up) == 3
        assert all(cp.version_of(r.name) == "v2" for r in up)

    def test_validation(self, sim):
        _, _, _, cp, factory = managed_world(sim)
        with pytest.raises(ConfigError):
            CanaryRollout(cp, "web", "v2", factory, SLOS, canary_replicas=0)
        with pytest.raises(ConfigError):
            CanaryRollout(cp, "web", "v2", factory, SLOS, observe_for=0)
