"""The reconciler: self-healing, scaling, rolling updates, canaries."""

import pytest

from repro.controlplane import PlacementPolicy, ReplicaSpec
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.resilience import ResiliencePolicy, RetryPolicy
from repro.service.microservice import STATE_DOWN, STATE_UP
from repro.workload import OpenLoopClient

from .conftest import managed_world, make_factory, sim  # noqa: F401


class TestApply:
    def test_initial_placement_is_synchronous_and_spread(self, sim):
        cluster, deployment, _, cp, _ = managed_world(sim, replicas=4)
        live = deployment.instances("web")
        assert [r.name for r in live] == ["web-0", "web-1", "web-2", "web-3"]
        assert sorted(r.machine_name for r in live) == [
            "node0", "node1", "node2", "node3"
        ]
        assert all(r.state == STATE_UP for r in live)
        assert cp.placements == 4

    def test_duplicate_spec_rejected(self, sim):
        _, _, _, cp, factory = managed_world(sim)
        with pytest.raises(ConfigError, match="already has a spec"):
            cp.apply(ReplicaSpec("web", 2, 1, factory))

    def test_versions_tracked_per_replica(self, sim):
        _, _, _, cp, _ = managed_world(sim, replicas=2)
        assert cp.versions("web") == {"web-0": "v1", "web-1": "v1"}


class TestSelfHealing:
    def test_machine_kill_reschedules_onto_survivors(self, sim):
        cluster, deployment, dispatcher, cp, _ = managed_world(
            sim, machines=4, replicas=4
        )
        cp.start(stop_at=2.0)
        plan = FaultPlan().fail_machine(0.3, "node0")
        FaultInjector(
            sim, deployment, cluster.network, plan, cluster=cluster
        ).arm()
        client = OpenLoopClient(
            sim, dispatcher, 300.0, stop_at=2.0,
            resilience=ResiliencePolicy(
                timeout=0.2, retry=RetryPolicy(max_attempts=3)
            ),
        )
        client.start()
        sim.run(until=2.5)

        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        assert len(up) == 4
        assert all(r.machine_name != "node0" for r in up)
        assert cp.reschedules == 1
        assert cp.retirements == 1
        # The dead replica's cores were released back to the machine.
        assert cluster.machine("node0").unallocated_cores == 4
        # No request hung: losses resolved as timeouts and retried.
        assert client.requests_completed == client.requests_sent
        # Recovered goodput carries the offered load again.
        assert client.throughput(1.0, 2.0) > 250.0

    def test_replacement_pays_cold_start(self, sim):
        cluster, deployment, _, cp, _ = managed_world(
            sim, machines=3, replicas=2, cold_start=0.25,
        )
        cp.start(stop_at=2.0)
        plan = FaultPlan().crash(0.3, "web-0")
        FaultInjector(sim, deployment, cluster.network, plan).arm()
        sim.run(until=2.0)
        ready = [e for e in cp.events if e.name == "ready"]
        assert len(ready) == 1
        placed = [
            e for e in cp.events
            if e.name == "place" and e.attrs.get("cold_start") is not None
        ]
        # ready lands exactly cold_start after the placement decision.
        assert ready[0].t == pytest.approx(placed[0].t + 0.25)

    def test_never_empties_the_tier(self, sim):
        """Killing every machine leaves >= 1 registered corpse so the
        balancer fast-fails instead of raising TopologyError."""
        cluster, deployment, _, cp, _ = managed_world(
            sim, machines=2, replicas=2
        )
        cp.start(stop_at=1.0)
        plan = (
            FaultPlan()
            .fail_machine(0.2, "node0")
            .fail_machine(0.2, "node1")
        )
        FaultInjector(
            sim, deployment, cluster.network, plan, cluster=cluster
        ).arm()
        sim.run(until=1.0)
        remaining = deployment.instances("web")
        assert len(remaining) >= 1
        assert all(r.state == STATE_DOWN for r in remaining)
        # Nothing schedulable: placements stayed pending, not crashed.
        assert cp.pending_placements > 0

    def test_unschedulable_replacement_retries_after_restore(self, sim):
        cluster, deployment, _, cp, _ = managed_world(
            sim, machines=2, cores=1, replicas=2
        )
        cp.start(stop_at=3.0)
        plan = (
            FaultPlan()
            .fail_machine(0.3, "node0")
            .recover_machine(1.0, "node0")
        )
        FaultInjector(
            sim, deployment, cluster.network, plan, cluster=cluster
        ).arm()
        sim.run(until=3.0)
        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        # Replacement could not fit anywhere until node0 came back.
        assert len(up) == 2
        assert cp.pending_placements > 0
        ready = [e for e in cp.events if e.name == "ready"]
        assert ready and ready[0].t > 1.0

    def test_start_aborts_when_machine_dies_mid_cold_start(self, sim):
        cluster, deployment, _, cp, _ = managed_world(
            sim, machines=2, replicas=2, cold_start=0.3,
        )
        cp.start(stop_at=2.0)
        # Kill node0 (hosts web-0); the replacement lands on node1;
        # then kill node1 while the replacement is still cold-starting.
        plan = (
            FaultPlan()
            .fail_machine(0.2, "node0")
            .fail_machine(0.4, "node1")
        )
        FaultInjector(
            sim, deployment, cluster.network, plan, cluster=cluster
        ).arm()
        sim.run(until=2.0)
        aborted = [e for e in cp.events if e.name == "start_aborted"]
        assert aborted
        # The aborted start released its reserved core; only web-1's
        # own core stays allocated (the last corpse is kept registered
        # so the tier never empties).
        assert cluster.machine("node1").unallocated_cores == 3
        assert set(cluster.machine("node1").allocations) == {"web-1"}


class TestScaling:
    def test_scale_up_adds_replicas_with_cold_start(self, sim):
        _, deployment, _, cp, _ = managed_world(sim, replicas=2)
        cp.start(stop_at=1.0)
        sim.schedule(0.1, lambda: cp.set_replicas("web", 4))
        sim.run(until=1.0)
        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        assert len(up) == 4

    def test_scale_down_drains_newest_then_retires(self, sim):
        _, deployment, _, cp, _ = managed_world(sim, replicas=4)
        cp.start(stop_at=1.0)
        sim.schedule(0.1, lambda: cp.set_replicas("web", 2))
        sim.run(until=1.0)
        live = deployment.instances("web")
        assert sorted(r.name for r in live) == ["web-0", "web-1"]
        assert cp.retirements == 2
        drains = [e for e in cp.events if e.name == "drain"]
        assert {e.attrs["replica"] for e in drains} == {"web-2", "web-3"}
        assert all(e.attrs["reason"] == "scale_down" for e in drains)

    def test_scale_to_zero_rejected(self, sim):
        _, _, _, cp, _ = managed_world(sim)
        with pytest.raises(ConfigError, match="replicas must be >= 1"):
            cp.set_replicas("web", 0)

    def test_unknown_service_rejected(self, sim):
        _, _, _, cp, _ = managed_world(sim)
        with pytest.raises(ConfigError, match="no spec applied"):
            cp.set_replicas("db", 2)


class TestRollingUpdate:
    def test_set_version_replaces_all_replicas_one_at_a_time(self, sim):
        _, deployment, _, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=4.0)
        v2_factory = make_factory(sim)
        sim.schedule(0.1, lambda: cp.set_version("web", "v2", v2_factory))
        sim.run(until=4.0)
        up = [r for r in deployment.instances("web") if r.state == STATE_UP]
        assert len(up) == 3
        assert all(cp.version_of(r.name) == "v2" for r in up)
        # Old replicas drained for being stale, not dead.
        drains = [e for e in cp.events if e.name == "drain"]
        assert all(e.attrs["reason"] == "stale_version" for e in drains)
        assert len(drains) == 3

    def test_rolling_never_drops_below_desired(self, sim):
        _, deployment, _, cp, _ = managed_world(sim, replicas=3)
        cp.start(stop_at=4.0)
        low_water = []

        def watch():
            up = [
                r for r in deployment.instances("web")
                if r.state == STATE_UP
            ]
            low_water.append(len(up))
            sim.schedule(0.01, watch)

        sim.schedule(0.1, lambda: cp.set_version("web", "v2"))
        sim.schedule(0.0, watch)
        sim.run(until=4.0)
        assert min(low_water) >= 3  # max-surge, never max-unavailable


class TestCanaryCohort:
    def test_canaries_excluded_from_desired_count(self, sim):
        _, deployment, _, cp, factory = managed_world(sim, replicas=2)
        cp.start(stop_at=1.0)
        sim.schedule(
            0.1, lambda: cp.add_canaries("web", "v2", factory, 1)
        )
        sim.run(until=1.0)
        assert len(cp.ready_replicas("web")) == 2  # stable set only
        assert len(cp.canary_instances("web")) == 1
        # The reconciler did not treat the canary as surplus.
        assert cp.retirements == 0

    def test_remove_canaries_drains_cohort(self, sim):
        _, deployment, _, cp, factory = managed_world(sim, replicas=2)
        cp.start(stop_at=2.0)
        sim.schedule(
            0.1, lambda: cp.add_canaries("web", "v2", factory, 1)
        )
        sim.schedule(0.5, lambda: cp.remove_canaries("web"))
        sim.run(until=2.0)
        assert cp.canary_instances("web") == []
        live = deployment.instances("web")
        assert sorted(r.name for r in live) == ["web-0", "web-1"]

    def test_remove_canaries_cancels_pending_starts(self, sim):
        cluster, _, _, cp, factory = managed_world(
            sim, replicas=2, cold_start=0.5
        )
        cp.start(stop_at=2.0)
        sim.schedule(
            0.1, lambda: cp.add_canaries("web", "v2", factory, 1)
        )
        # Cancel while the canary is still cold-starting.
        sim.schedule(0.3, lambda: cp.remove_canaries("web"))
        sim.run(until=2.0)
        cancelled = [e for e in cp.events if e.name == "start_cancelled"]
        assert cancelled
        # Reserved cores came back.
        total_free = sum(m.unallocated_cores for m in cluster)
        assert total_free == 4 * 4 - 2

    def test_promote_folds_canaries_into_stable_set(self, sim):
        _, _, _, cp, factory = managed_world(sim, replicas=2)
        cp.start(stop_at=2.0)
        sim.schedule(
            0.1, lambda: cp.add_canaries("web", "v2", factory, 1)
        )
        sim.schedule(0.5, lambda: cp.promote_canaries("web"))
        sim.run(until=2.0)
        assert cp.canary_names("web") == set()
        # Promoted canary now counts: 3 ready vs desired 2 — the
        # reconciler drained the surplus (a stale v1 replica first).
        assert len(cp.ready_replicas("web")) == 2


class TestDeterminism:
    def test_identical_runs_produce_identical_event_logs(self, sim):
        def run():
            from repro.engine import Simulator
            local = Simulator(seed=5)
            cluster, deployment, dispatcher, cp, _ = managed_world(
                local, machines=4, replicas=4
            )
            cp.start(stop_at=1.5)
            plan = FaultPlan().fail_machine(0.3, "node1")
            FaultInjector(
                local, deployment, cluster.network, plan, cluster=cluster
            ).arm()
            client = OpenLoopClient(local, dispatcher, 200.0, stop_at=1.5)
            client.start()
            local.run(until=2.0)
            return [
                (e.t, e.name, sorted(e.attrs.items())) for e in cp.events
            ], client.requests_completed

        events_a, completed_a = run()
        events_b, completed_b = run()
        assert events_a == events_b
        assert completed_a == completed_b
