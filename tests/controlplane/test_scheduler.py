"""Placement: spread/pack ranking, failure domains, exhaustion."""

import pytest

from repro.controlplane import PlacementPolicy, ReplicaSpec, Scheduler
from repro.errors import ConfigError, SchedulingError

from .conftest import make_cluster


def spec(placement="spread", domain="machine", cores=1):
    return ReplicaSpec(
        "web", 1, cores, factory=lambda *a: None,
        placement=PlacementPolicy(placement, domain),
    )


class TestSpread:
    def test_spread_prefers_empty_machines(self):
        cluster = make_cluster(machines=3)
        sched = Scheduler(cluster)
        occupied = []
        for expected in ("node0", "node1", "node2"):
            machine = sched.place(spec(), occupied)
            assert machine.name == expected
            machine.allocate(f"r@{expected}", 1)
            occupied.append(machine.name)

    def test_spread_breaks_ties_by_free_cores(self):
        cluster = make_cluster(machines=2, cores=4)
        cluster.machine("node0").allocate("other", 2)
        sched = Scheduler(cluster)
        # Both machines host zero web replicas; node1 has more free
        # cores and wins the tie.
        assert sched.place(spec(), []).name == "node1"

    def test_spread_over_racks(self):
        cluster = make_cluster(machines=4, racks=2)
        sched = Scheduler(cluster)
        # node0/node2 are rack0, node1/node3 rack1. With one replica
        # on node0, rack0 is loaded: the next goes to rack1.
        machine = sched.place(spec(domain="rack"), ["node0"])
        assert cluster.domain_of(machine, "rack") == "rack1"
        # With both racks equally loaded, insertion order decides.
        machine = sched.place(spec(domain="rack"), ["node0", "node1"])
        assert machine.name == "node0"

    def test_spread_determinism(self):
        results = set()
        for _ in range(5):
            cluster = make_cluster(machines=4, racks=2)
            machine = Scheduler(cluster).place(spec(domain="rack"), ["node1"])
            results.add(machine.name)
        assert len(results) == 1


class TestPack:
    def test_pack_chooses_fullest_fit(self):
        cluster = make_cluster(machines=3, cores=4)
        cluster.machine("node1").allocate("other", 3)
        sched = Scheduler(cluster)
        # node1 has 1 free core — the fullest that still fits 1.
        assert sched.place(spec("pack"), []).name == "node1"

    def test_pack_skips_machines_too_full(self):
        cluster = make_cluster(machines=2, cores=4)
        cluster.machine("node0").allocate("other", 3)
        sched = Scheduler(cluster)
        # A 2-core replica cannot fit node0's single free core.
        assert sched.place(spec("pack", cores=2), []).name == "node1"


class TestFeasibility:
    def test_failed_machines_are_not_candidates(self):
        cluster = make_cluster(machines=2)
        cluster.machine("node0").fail()
        assert Scheduler(cluster).place(spec(), []).name == "node1"

    def test_exhausted_cluster_raises(self):
        cluster = make_cluster(machines=2, cores=1)
        for m in cluster:
            m.allocate("filler", 1)
        with pytest.raises(SchedulingError, match="no schedulable machine"):
            Scheduler(cluster).place(spec(), [])

    def test_all_machines_failed_raises(self):
        cluster = make_cluster(machines=2)
        for m in cluster:
            m.fail()
        with pytest.raises(SchedulingError, match="0 of 2"):
            Scheduler(cluster).place(spec(), [])

    def test_feasible_replicas_counts_free_slots(self):
        cluster = make_cluster(machines=2, cores=4)
        sched = Scheduler(cluster)
        assert sched.feasible_replicas(spec(cores=2)) == 4
        cluster.machine("node0").fail()
        assert sched.feasible_replicas(spec(cores=2)) == 2
        cluster.machine("node1").allocate("other", 3)
        assert sched.feasible_replicas(spec(cores=2)) == 0


class TestSpecValidation:
    def test_placement_policy_validates(self):
        with pytest.raises(ConfigError):
            PlacementPolicy("scatter")
        with pytest.raises(ConfigError):
            PlacementPolicy("spread", "galaxy")

    def test_replica_spec_validates(self):
        with pytest.raises(ConfigError):
            ReplicaSpec("web", 0, 1, factory=lambda *a: None)
        with pytest.raises(ConfigError):
            ReplicaSpec("web", 1, 0, factory=lambda *a: None)
