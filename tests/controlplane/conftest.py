"""Shared builders for control-plane tests: clustered worlds whose
only tier is deployed by the controller."""

import pytest

from repro.controlplane import ControlPlane, PlacementPolicy, ReplicaSpec
from repro.distributions import Deterministic, Exponential
from repro.engine import Simulator
from repro.hardware import Cluster, DvfsLadder, GHZ, NetworkFabric
from repro.service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SingleQueue,
    Stage,
)
from repro.topology import Deployment, Dispatcher, PathNode, PathTree


@pytest.fixture
def sim():
    return Simulator(seed=0)


def make_cluster(machines=4, cores=4, racks=1, zones=1):
    network = NetworkFabric(
        propagation=Deterministic(10e-6),
        loopback=Deterministic(1e-6),
        bandwidth_bytes_per_s=1e12,
    )
    return Cluster.homogeneous(
        machines, cores, DvfsLadder([2.6 * GHZ]), network,
        racks=racks, zones=zones,
    )


def make_factory(sim, mean_service=1e-3, tier="web"):
    """A ReplicaSpec factory building one-stage exponential replicas."""

    def factory(name, machine, cores, version):
        stage = Stage(
            "process", 0, SingleQueue(), base=Exponential(mean_service)
        )
        selector = PathSelector([ExecutionPath(0, "only", [0])])
        return Microservice(
            name, sim, [stage], selector, cores,
            machine_name=machine.name, tier=tier,
        )

    return factory


def managed_world(
    sim,
    machines=4,
    cores=4,
    racks=1,
    zones=1,
    replicas=3,
    cores_per_replica=1,
    mean_service=1e-3,
    placement="spread",
    domain="machine",
    reconcile_interval=0.05,
    cold_start=0.1,
    apply=True,
):
    """Cluster + deployment + dispatcher + control plane, with the
    ``web`` tier applied (unless ``apply=False``)."""
    cluster = make_cluster(machines, cores, racks, zones)
    deployment = Deployment()
    dispatcher = Dispatcher(sim, deployment, cluster.network)
    deployment.set_pool("web", 8)
    dispatcher.add_tree(PathTree().chain(PathNode("root", "web")))
    cp = ControlPlane(
        sim, cluster, deployment,
        reconcile_interval=reconcile_interval, cold_start=cold_start,
    )
    factory = make_factory(sim, mean_service)
    if apply:
        cp.apply(ReplicaSpec(
            "web", replicas, cores_per_replica, factory,
            PlacementPolicy(placement, domain),
        ))
    return cluster, deployment, dispatcher, cp, factory
