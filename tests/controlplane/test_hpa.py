"""The horizontal autoscaler driving replica counts through the
control plane."""

import pytest

from repro.controlplane import HorizontalAutoscaler
from repro.errors import ConfigError
from repro.workload import OpenLoopClient, StepPattern

from .conftest import managed_world, sim  # noqa: F401


def hpa_world(sim, replicas=2, **kwargs):
    cluster, deployment, dispatcher, cp, factory = managed_world(
        sim, machines=8, replicas=replicas,
    )
    hpa = HorizontalAutoscaler(
        cp, "web",
        target_utilization=0.6,
        min_replicas=1, max_replicas=8,
        decision_interval=0.2,
        **kwargs,
    )
    return dispatcher, cp, hpa


class TestScaleUp:
    def test_overload_grows_the_tier_through_the_control_plane(self, sim):
        # 2 one-core replicas at 1ms/request cannot hold 1500 QPS at
        # 60% utilisation: the HPA must request more replicas.
        dispatcher, cp, hpa = hpa_world(sim, replicas=2)
        cp.start(stop_at=3.0)
        hpa.start(stop_at=3.0)
        client = OpenLoopClient(sim, dispatcher, 1500.0, stop_at=3.0)
        client.start()
        sim.run(until=3.5)
        assert hpa.scale_ups >= 1
        assert cp.desired("web") >= 3
        assert len(cp.ready_replicas("web")) >= 3
        # Growth went through placement, not direct deployment edits.
        assert cp.placements >= cp.desired("web")
        place_events = [e for e in cp.events if e.name == "place"]
        assert len(place_events) == cp.placements

    def test_scale_down_when_idle_drains_gracefully(self, sim):
        pattern = StepPattern([(0.0, 1500.0), (1.5, 50.0)])
        dispatcher, cp, hpa = hpa_world(sim, replicas=4)
        cp.start(stop_at=5.0)
        hpa.start(stop_at=5.0)
        client = OpenLoopClient(sim, dispatcher, pattern, stop_at=5.0)
        client.start()
        sim.run(until=5.5)
        assert hpa.scale_downs >= 1
        assert cp.desired("web") < 4
        # Scale-down retired replicas only after they went idle.
        assert cp.retirements >= 1
        assert client.requests_ok == client.requests_sent


class TestSLOOverride:
    def test_breach_forces_scale_up_at_low_utilization(self, sim):
        dispatcher, cp, hpa = hpa_world(sim, replicas=2)

        class BreachedState:
            breached = True

        class StubMonitor:
            states = [BreachedState()]

        hpa.slo_monitor = StubMonitor()
        cp.start(stop_at=1.0)
        hpa.start(stop_at=1.0)
        client = OpenLoopClient(sim, dispatcher, 100.0, stop_at=1.0)
        client.start()
        sim.run(until=1.0)
        assert hpa.slo_scale_ups >= 1
        assert cp.desired("web") > 2


class TestDeadband:
    def test_no_flapping_inside_tolerance(self, sim):
        # ~0.6 utilisation on 2 one-core 1ms replicas = 1200 QPS.
        # Window-to-window utilisation wanders with queue busy periods,
        # but stays well inside a 30% band — the replica count must
        # hold perfectly still.
        dispatcher, cp, hpa = hpa_world(sim, replicas=2, tolerance=0.3)
        cp.start(stop_at=3.0)
        hpa.start(stop_at=3.0)
        client = OpenLoopClient(sim, dispatcher, 1200.0, stop_at=3.0)
        client.start()
        sim.run(until=3.0)
        assert hpa.decisions >= 10
        assert hpa.scale_ups + hpa.scale_downs == 0
        assert cp.desired("web") == 2

    def test_validation(self, sim):
        _, cp, _ = hpa_world(sim)
        with pytest.raises(ConfigError):
            HorizontalAutoscaler(cp, "web", target_utilization=0.0)
        with pytest.raises(ConfigError):
            HorizontalAutoscaler(cp, "web", min_replicas=3, max_replicas=2)
        with pytest.raises(ConfigError):
            HorizontalAutoscaler(cp, "web", decision_interval=0)
