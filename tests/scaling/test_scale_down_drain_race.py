"""Scale-down racing a draining replica.

A replica can be draining (graceful shutdown, canary rollback) at the
same moment the autoscaler steps its active window down. The balancer
must keep routing every request to a healthy replica — never to the
draining one, and never crash because the healthy subset got shorter
than the active count mid-decision.
"""

import pytest

from repro.scaling import ActiveSetBalancer, AutoScaler
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


def drain_world(sim, network, replicas=3, initial_active=3):
    cluster, deployment, dispatcher = build_world(
        sim, network, machines=replicas, cores=4
    )
    instances = [
        build_instance(
            sim, cluster, f"web{i}", f"node{i}",
            service_time=1e-3, cores=1, tier="web",
        )
        for i in range(replicas)
    ]
    for inst in instances:
        deployment.add_instance(inst)
    balancer = ActiveSetBalancer(replicas, initial_active)
    deployment._balancers["web"] = balancer
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    scaler = AutoScaler(
        sim, instances, balancer,
        decision_interval=0.05, low_watermark=0.3, high_watermark=0.7,
    )
    return dispatcher, scaler, instances, balancer


class TestScaleDownDrainRace:
    def test_draining_replica_takes_no_new_requests(self, sim, network):
        """Light load drives the scaler down while web0 — inside the
        active window — is draining: every request must land on a
        healthy replica and resolve."""
        dispatcher, scaler, instances, _ = drain_world(sim, network)
        web0 = instances[0]
        sim.schedule(0.2, web0.start_draining)
        before = {}
        sim.schedule(
            0.2, lambda: before.update(accepted=web0.jobs_accepted)
        )
        client = OpenLoopClient(sim, dispatcher, arrivals=200, stop_at=1.0)
        scaler.start()
        client.start()
        sim.run(until=1.5)

        # The scaler stepped down under the light load...
        assert scaler.active == 1
        # ...while the draining replica never took another request.
        assert web0.jobs_accepted == before["accepted"]
        # And nothing was lost in the race: every request resolved ok.
        assert client.requests_completed == client.requests_sent
        assert client.requests_ok == client.requests_sent

    def test_scale_down_below_healthy_count_keeps_serving(self, sim, network):
        """active_count can momentarily exceed the healthy subset when
        a drain shrinks it; the pick must clamp, not crash."""
        dispatcher, scaler, instances, balancer = drain_world(
            sim, network, replicas=2, initial_active=2
        )
        sim.schedule(0.1, instances[0].start_draining)
        client = OpenLoopClient(sim, dispatcher, arrivals=150, stop_at=0.8)
        scaler.start()
        client.start()
        sim.run(until=1.2)
        assert client.requests_ok == client.requests_sent
        # All post-drain traffic flowed to the one healthy replica.
        assert instances[1].jobs_completed > 0

    def test_drained_replica_finishes_queued_work(self, sim, network):
        """Draining is graceful: whatever web0 accepted before the
        drain completes even as the scaler steps down around it."""
        dispatcher, scaler, instances, _ = drain_world(sim, network)
        web0 = instances[0]
        client = OpenLoopClient(sim, dispatcher, arrivals=600, stop_at=1.0)
        scaler.start()
        client.start()
        sim.schedule(0.3, web0.start_draining)
        sim.run(until=2.0)
        assert web0.queued_jobs == 0
        assert not web0._running
        assert web0.jobs_completed == web0.jobs_accepted
        assert client.requests_ok == client.requests_sent
