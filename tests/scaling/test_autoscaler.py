"""Tests for the horizontal autoscaler."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.scaling import ActiveSetBalancer, AutoScaler
from repro.topology import PathNode, PathTree
from repro.workload import OpenLoopClient, StepPattern

from ..topology.conftest import build_instance, build_world, network, sim  # noqa: F401


def scaled_world(sim, network, replicas=4, initial_active=1,
                 service_time=1e-3, low=0.3, high=0.7, interval=0.05):
    cluster, deployment, dispatcher = build_world(
        sim, network, machines=replicas, cores=4
    )
    instances = [
        build_instance(
            sim, cluster, f"web{i}", f"node{i}",
            service_time=service_time, cores=1, tier="web",
        )
        for i in range(replicas)
    ]
    for inst in instances:
        deployment.add_instance(inst)
    balancer = ActiveSetBalancer(replicas, initial_active)
    deployment._balancers["web"] = balancer
    dispatcher.add_tree(PathTree().chain(PathNode("web", "web")))
    scaler = AutoScaler(
        sim, instances, balancer,
        decision_interval=interval, low_watermark=low, high_watermark=high,
    )
    return dispatcher, scaler, instances


class TestActiveSetBalancer:
    def test_routes_only_to_active(self):
        rng = np.random.default_rng(0)

        class Fake:
            def __init__(self, name):
                self.name = name

        balancer = ActiveSetBalancer(4, initial_active=2)
        picks = {balancer.pick([Fake(f"i{k}") for k in range(4)], rng).name
                 for _ in range(20)}
        assert picks == {"i0", "i1"}

    def test_set_active_clamps(self):
        balancer = ActiveSetBalancer(4, initial_active=2)
        assert balancer.set_active(10) == 4
        assert balancer.set_active(0) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            ActiveSetBalancer(0)
        with pytest.raises(ConfigError):
            ActiveSetBalancer(2, initial_active=3)


class TestAutoScaler:
    def test_scales_up_under_load(self, sim, network):
        # One active 1-core replica at 1ms/request cannot carry 2.5k
        # QPS: the scaler must activate more replicas.
        dispatcher, scaler, _ = scaled_world(sim, network)
        client = OpenLoopClient(sim, dispatcher, arrivals=2500, stop_at=1.0)
        scaler.start()
        client.start()
        sim.run(until=1.0)
        assert scaler.active >= 3

    def test_scales_down_when_idle(self, sim, network):
        dispatcher, scaler, _ = scaled_world(
            sim, network, initial_active=4
        )
        client = OpenLoopClient(sim, dispatcher, arrivals=100, stop_at=1.0)
        scaler.start()
        client.start()
        sim.run(until=1.0)
        assert scaler.active == 1

    def test_tracks_step_load(self, sim, network):
        pattern = StepPattern([(0.0, 200), (1.0, 2500), (2.0, 200)])
        dispatcher, scaler, _ = scaled_world(sim, network)
        client = OpenLoopClient(sim, dispatcher, arrivals=pattern, stop_at=3.0)
        scaler.start()
        client.start()
        sim.run(until=3.0)
        times = scaler.active_series.times
        values = scaler.active_series.values
        during_burst = values[(times > 1.5) & (times < 2.0)]
        after_burst = values[times > 2.8]
        assert during_burst.max() >= 3
        assert after_burst[-1] <= 2

    def test_saves_core_seconds_vs_static(self, sim, network):
        dispatcher, scaler, _ = scaled_world(sim, network)
        client = OpenLoopClient(sim, dispatcher, arrivals=300, stop_at=2.0)
        scaler.start()
        client.start()
        sim.run(until=2.0)
        static_core_seconds = 4 * 1 * 2.0  # 4 replicas x 1 core x 2s
        assert scaler.core_seconds_active() < 0.6 * static_core_seconds

    def test_latency_still_bounded_when_scaling(self, sim, network):
        dispatcher, scaler, _ = scaled_world(sim, network)
        client = OpenLoopClient(sim, dispatcher, arrivals=2500, stop_at=1.5)
        scaler.start()
        client.start()
        sim.run(until=2.5)
        # After scale-up converges, latency is back near service time.
        assert client.latencies.p50(since=1.0) < 5e-3

    def test_validation(self, sim, network):
        _, _, instances = scaled_world(sim, network)
        balancer = ActiveSetBalancer(4)
        with pytest.raises(ConfigError):
            AutoScaler(sim, [], balancer)
        with pytest.raises(ConfigError):
            AutoScaler(sim, instances, balancer, low_watermark=0.8,
                       high_watermark=0.5)
        with pytest.raises(ConfigError):
            AutoScaler(sim, instances, balancer, decision_interval=0)

    def test_breached_slo_forces_scale_up(self, sim, network):
        # Load light enough that utilisation stays under the high
        # watermark — without the SLO override nothing would scale.
        dispatcher, scaler, _ = scaled_world(sim, network, high=0.95)
        client = OpenLoopClient(sim, dispatcher, arrivals=300, stop_at=1.0)

        class BreachedState:
            breached = True

        class StubMonitor:
            states = [BreachedState()]

        scaler.slo_monitor = StubMonitor()
        scaler.start()
        client.start()
        sim.run(until=0.3)
        assert scaler.slo_scale_ups >= 1
        assert scaler.active >= 2
