"""Edge paths of the BigHouse convergence loop."""

import pytest

from repro.bighouse import BigHouseSimulator
from repro.distributions import Deterministic, Exponential


class TestConvergenceEdges:
    def test_unconverged_run_reports_flag(self):
        # An unstable queue (rho > 1): per-instance p99 keeps drifting,
        # so a tight tolerance cannot be met within max_instances.
        sim = BigHouseSimulator(
            Exponential(0.9e-3), Exponential(1e-3), servers=1,
            requests_per_instance=2_000,
            min_instances=2, max_instances=3, tolerance=0.0001,
        )
        result = sim.run()
        assert not result.converged
        assert result.instances == 3
        assert result.samples > 0

    def test_deterministic_system_converges_immediately(self):
        # D/D/1 at low load: every instance measures the same p99, so
        # the spread is zero after min_instances.
        sim = BigHouseSimulator(
            Deterministic(1e-2), Deterministic(1e-3), servers=1,
            requests_per_instance=1_000,
            min_instances=2, max_instances=10, tolerance=0.01,
        )
        result = sim.run()
        assert result.converged
        assert result.instances == 2
        assert result.p99 == pytest.approx(1e-3, rel=1e-6)

    def test_percentiles_are_ordered(self):
        result = BigHouseSimulator(
            Exponential(2e-3), Exponential(1e-3), servers=2,
            requests_per_instance=5_000,
        ).run()
        assert result.p50 <= result.p95 <= result.p99
        assert result.mean > 0

    def test_more_servers_same_offered_load_is_faster(self):
        def run(servers):
            return BigHouseSimulator(
                Exponential(0.4e-3), Exponential(1e-3), servers=servers,
                requests_per_instance=10_000, seed=5,
            ).run().mean

        assert run(8) < run(4)
