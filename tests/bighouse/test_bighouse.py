"""Tests for the BigHouse baseline: G/G/k correctness and model folding."""

import numpy as np
import pytest

from repro.apps import single_memcached
from repro.bighouse import (
    BigHouseSimulator,
    FoldedServiceTime,
    simulate_ggk_instance,
)
from repro.distributions import Deterministic, Exponential
from repro.errors import SimulationError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGGkInstance:
    def test_mm1_mean_sojourn_matches_theory(self, rng):
        # M/M/1 at rho=0.5: E[T] = 1/(mu - lambda) = 2 * E[S].
        service_mean = 1e-3
        arrival_mean = 2e-3
        latencies = simulate_ggk_instance(
            Exponential(arrival_mean), Exponential(service_mean),
            servers=1, num_requests=200_000, rng=rng,
        )
        assert latencies.mean() == pytest.approx(2e-3, rel=0.05)

    def test_md1_light_load_is_service_time(self, rng):
        latencies = simulate_ggk_instance(
            Exponential(1.0), Deterministic(1e-3),
            servers=1, num_requests=5_000, rng=rng,
        )
        # Essentially no queueing at rho=0.001.
        assert latencies.mean() == pytest.approx(1e-3, rel=0.01)

    def test_more_servers_reduce_latency(self, rng):
        kwargs = dict(
            interarrival=Exponential(0.5e-3),
            service=Exponential(1e-3),
            num_requests=100_000,
        )
        one = simulate_ggk_instance(
            servers=4, rng=np.random.default_rng(1), **kwargs
        )
        many = simulate_ggk_instance(
            servers=8, rng=np.random.default_rng(1), **kwargs
        )
        assert many.mean() < one.mean()

    def test_latencies_at_least_service_floor(self, rng):
        latencies = simulate_ggk_instance(
            Exponential(1e-3), Deterministic(5e-4),
            servers=2, num_requests=10_000, rng=rng,
        )
        assert latencies.min() >= 5e-4 - 1e-12

    def test_validation(self, rng):
        with pytest.raises(SimulationError):
            simulate_ggk_instance(
                Exponential(1.0), Exponential(1.0), 0, 100, rng
            )
        with pytest.raises(SimulationError):
            simulate_ggk_instance(
                Exponential(1.0), Exponential(1.0), 1, 5, rng
            )


class TestBigHouseSimulator:
    def test_converges_on_easy_system(self):
        sim = BigHouseSimulator(
            Exponential(2e-3), Exponential(1e-3), servers=1,
            requests_per_instance=20_000,
        )
        result = sim.run()
        assert result.converged
        assert result.instances >= 4
        assert result.mean == pytest.approx(2e-3, rel=0.1)
        assert result.p99 > result.p50

    def test_reproducible(self):
        def run():
            return BigHouseSimulator(
                Exponential(2e-3), Exponential(1e-3), seed=42,
                requests_per_instance=5_000,
            ).run()

        assert run().p99 == run().p99

    def test_validation(self):
        with pytest.raises(SimulationError):
            BigHouseSimulator(
                Exponential(1.0), Exponential(1.0), min_instances=1
            )
        with pytest.raises(SimulationError):
            BigHouseSimulator(
                Exponential(1.0), Exponential(1.0),
                min_instances=4, max_instances=2,
            )
        with pytest.raises(SimulationError):
            BigHouseSimulator(
                Exponential(1.0), Exponential(1.0), tolerance=2.0
            )


class TestFolding:
    def test_folded_mean_sums_all_stages(self, rng):
        world = single_memcached()
        instance = world.instance("memcached")
        folded = FoldedServiceTime(instance, mean_request_bytes=256)
        # Full epoll base + per-event + socket read + processing + send.
        expected = sum(
            stage.mean_cost(batch_size=1, mean_bytes=256)
            for stage in instance.stages
            if stage.stage_id in instance.selector.get_by_name(
                "memcached_read"
            ).stage_ids
        )
        samples = np.array([folded.sample(rng) for _ in range(20_000)])
        # Read/write paths differ slightly; allow that spread.
        assert samples.mean() == pytest.approx(expected, rel=0.2)

    def test_folding_overcharges_vs_amortised(self):
        """The Fig 13 effect: the folded per-request cost exceeds the
        batching-amortised cost, so BigHouse saturates earlier."""
        world = single_memcached()
        instance = world.instance("memcached")
        folded = FoldedServiceTime(instance, mean_request_bytes=256)
        # Amortised: epoll/socket_read base costs shared by (say) 8
        # batched requests.
        amortised = 0.0
        path = instance.selector.get_by_name("memcached_read")
        for stage_id in path.stage_ids:
            stage = instance.stage(stage_id)
            batch = 8 if stage.batching else 1
            amortised += stage.mean_cost(batch_size=batch, mean_bytes=256) / batch
        assert folded.mean() > amortised * 1.2

    def test_explicit_path_selection(self, rng):
        world = single_memcached()
        instance = world.instance("memcached")
        read = FoldedServiceTime(instance, 0.0, path_name="memcached_read")
        write = FoldedServiceTime(instance, 0.0, path_name="memcached_write")
        assert write.mean() > read.mean()
