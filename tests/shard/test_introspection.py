"""Shard-runtime introspection: coordinator counters, straggler
attribution, per-shard scrape merging, and their reconciliation."""

import pytest

from repro.apps import social_network, two_tier
from repro.analysis import reconcile_shard_runtime
from repro.distributions import Deterministic
from repro.experiments.loadsweep import measure_vanilla_point
from repro.hardware import NetworkFabric
from repro.runner import derive_seed
from repro.shard import measure_fanout_sharded
from repro.shard.adapter import sharded_load_point


def det_fabric():
    return NetworkFabric(propagation=Deterministic(50e-6))


SEED = derive_seed(11, 1000.0)
SN = dict(qps=1000.0, duration=0.05, warmup=0.01)


def sharded(build, cfg, shards, **kwargs):
    kwargs.setdefault("network", det_fabric())
    return sharded_load_point(
        build, cfg["qps"], cfg["duration"], cfg["warmup"], SEED, shards,
        mode="inline", **kwargs,
    )


@pytest.fixture(scope="module")
def scraped_point():
    return sharded(social_network, SN, 4, scrape_interval=0.01)


class TestCoordinatorCounters:
    def test_shard_sync_attribution_reconciles(self, scraped_point):
        sync = scraped_point.shard_sync
        assert sync["shards"] == 4
        assert sync["rounds"] > 0 and sync["messages_exchanged"] > 0
        assert sync["stalls"] == 0 and sync["restarts"] == 0
        # Exactly one shard bounds each conservative round, so the
        # attribution must sum to the round count exactly.
        assert sum(sync["straggler_rounds"].values()) == sync["rounds"]

    def test_runtime_block_reconciles_with_itself(self, scraped_point):
        runtime = scraped_point.timeline["shard_runtime"]
        reconcile_shard_runtime(runtime)  # raises on any mismatch
        assert runtime["rounds"] == scraped_point.shard_sync["rounds"]
        assert set(runtime["per_shard"]) == {"0", "1", "2", "3"}
        for stats in runtime["per_shard"].values():
            assert stats["events"] >= 0
            assert stats["busy_wall_s"] >= 0.0
            assert stats["blocked_wall_s"] >= 0.0
        mailbox = runtime["mailbox_volume"]
        assert sum(mailbox.values()) == runtime["messages_exchanged"]

    def test_reconcile_raises_on_cooked_counters(self, scraped_point):
        runtime = dict(scraped_point.timeline["shard_runtime"])
        cooked = dict(runtime["straggler_rounds"])
        shard = next(iter(cooked))
        cooked[shard] += 1
        with pytest.raises(Exception, match="straggler"):
            reconcile_shard_runtime(dict(runtime, straggler_rounds=cooked))

    def test_fanout_port_reports_stragglers_too(self):
        result = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(),
            qps=100.0, num_requests=30, seed=3, mode="inline",
        )
        assert result["stalls"] >= 0
        straggler = result["straggler_rounds"]
        assert sum(straggler.values()) == result["rounds"]


class TestScrapeUnderShards:
    def test_series_merge_disjointly_across_shards(self, scraped_point):
        series = scraped_point.timeline["series"]
        world = social_network(seed=SEED)
        # Every tier of the full world appears exactly once, no matter
        # which shard owned its machines.
        for service in world.deployment.services:
            assert f"util/{service}" in series
            assert f"depth/{service}" in series
        # Only the client-owning shard contributes client series.
        assert "client/qps" in series
        for data in series.values():
            assert len(data["times"]) == len(data["values"]) > 0

    def test_scrape_on_outcome_matches_scrape_off(self):
        off = sharded(social_network, SN, 2)
        on = sharded(social_network, SN, 2, scrape_interval=0.01)
        assert off.timeline is None and on.timeline is not None
        for field in ("offered_qps", "throughput", "mean", "p50", "p95",
                      "p99", "completed", "slo"):
            assert getattr(on, field) == getattr(off, field), field

    def test_scrape_off_sharded_still_bit_identical_to_vanilla(self):
        # The scrape plumbing must not perturb the scrape-off path:
        # dataclass equality (which now includes the timeline field,
        # None on both sides) still holds against the vanilla engine.
        point = sharded(social_network, SN, 2)
        ref = measure_vanilla_point(
            social_network, SN["qps"], SN["duration"], SN["warmup"],
            SEED, network=det_fabric(),
        )
        assert point.timeline is None and ref.timeline is None
        assert point == ref

    def test_timeline_artifact_written_per_point(self, tmp_path):
        sharded(
            social_network, SN, 2, scrape_interval=0.01,
            trace_dir=tmp_path,
        )
        from repro.telemetry import load_timeline

        payload = load_timeline(tmp_path / "qps1000.timeseries.json")
        assert payload["meta"]["shards"] == 2
        assert payload["shard_runtime"]["rounds"] > 0
