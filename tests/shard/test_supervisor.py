"""Fault-tolerant sharded execution: supervised workers, the
barrier-replay journal, and the cross-shard conservation audit.

The headline contract: a shard worker SIGKILLed or hung mid-run is
rebuilt from its spec, replayed from the journal to the last completed
barrier, and the run's final statistics are **bit-identical** to the
unfaulted run — recovery is invisible except in the recovery report.
"""

import dataclasses
import multiprocessing

import pytest

from repro.distributions import Deterministic
from repro.errors import AuditError, ShardingError
from repro.experiments.audit import audit_sharded_run
from repro.experiments.loadsweep import (
    SweepPoint,
    measure_at_load,
    shard_recovery_manifest_summary,
)
from repro.experiments.tail_at_scale import (
    build_fanout_cluster,
    measure_tail_at_scale,
)
from repro.faults import FaultPlan
from repro.hardware import NetworkFabric
from repro.shard import (
    ReplayJournal,
    ShardMessage,
    ShardSupervisor,
    load_replay_journal,
    measure_fanout_sharded,
    outbound_digest,
    spawn_worker,
)
from repro.shard.worker import ShardWorkerDied


def det_fabric():
    return NetworkFabric(propagation=Deterministic(20e-6))


CFG = dict(qps=60.0, num_requests=30, seed=7)


# --------------------------------------------------------------------
# Toy deterministic host for driving the supervisor by hand. Must live
# at module level so worker processes can rebuild it from its spec.
# --------------------------------------------------------------------

class _TickHost:
    """State is a pure function of (step, inbound history): each round
    adds the inbound payloads, emits one message carrying the total."""

    def __init__(self, shard_id=0, step=1.0):
        self.shard_id = shard_id
        self.step = step
        self.rounds = 0
        self.total = 0

    def horizon(self):
        return self.step

    def advance(self, until, inbound):
        self.total += sum(m.payload[0] for m in inbound)
        self.rounds += 1
        msg = ShardMessage(
            time=until + self.step, priority=0,
            src_shard=self.shard_id, seq=self.rounds,
            kind="tick", payload=(self.total,),
        )
        return until + self.step, [(1 - self.shard_id, msg)]

    def finalize(self):
        return {"rounds": self.rounds, "total": self.total}


def build_tick_host(shard_id=0, step=1.0):
    return _TickHost(shard_id=shard_id, step=step)


def _inbound(round_index):
    return [ShardMessage(
        time=float(round_index) + 0.5, priority=0, src_shard=1,
        seq=round_index + 1, kind="tick", payload=(round_index + 1,),
    )]


def _drive(sup, journal, round_index, inbound):
    until = float(round_index + 1)
    sup.begin_advance(until, inbound)
    _horizon, out = sup.finish_advance()
    journal.record_round(
        round_index, [until], [inbound], [outbound_digest(out)]
    )
    return out


@pytest.fixture
def tick_supervisor():
    """A supervised single-shard _TickHost worker, torn down on exit."""
    ctx = multiprocessing.get_context()
    spec = (build_tick_host, {"shard_id": 0})
    journal = ReplayJournal(1)
    proxy = spawn_worker(ctx, 0, spec, timeout=30.0)
    sup = ShardSupervisor(
        0, spec, proxy, journal,
        max_restarts=3, window_timeout=30.0,
        backoff_base=0.01, backoff_cap=0.05, ctx=ctx,
    )
    try:
        yield sup, journal
    finally:
        sup.close()


class TestJournal:
    def test_digest_is_order_sensitive(self):
        a = (1, ShardMessage(0.5, 0, 0, 1, "x", (1,)))
        b = (1, ShardMessage(0.5, 0, 0, 2, "x", (2,)))
        assert outbound_digest([a, b]) != outbound_digest([b, a])
        assert outbound_digest([a, b]) == outbound_digest([a, b])
        assert outbound_digest([]) != outbound_digest([a])

    def test_round_indices_must_be_contiguous(self):
        journal = ReplayJournal(1)
        with pytest.raises(ShardingError, match="expected round 0"):
            journal.record_round(3, [1.0], [[]], ["d"])

    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ReplayJournal(2, path=path)
        for r in range(3):
            inbound = _inbound(r)
            journal.record_round(
                r, [float(r + 1)] * 2, [inbound, []], [f"d{r}a", f"d{r}b"]
            )
        loaded = load_replay_journal(path)
        assert loaded.num_shards == 2
        assert loaded.rounds == 3
        for r, record in enumerate(loaded.shard_history(0)):
            assert record.until == float(r + 1)
            assert record.digest == f"d{r}a"
            assert record.inbound == tuple(_inbound(r))
        assert loaded.message_counts() == {(1, 0): 3}

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ReplayJournal(1, path=path)
        journal.record_round(0, [1.0], [[]], ["d0"])
        with open(path, "a") as fh:
            fh.write('{"round": 1, "shards": [{"unt')  # killed writer
        assert load_replay_journal(path).rounds == 1

    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("\n")
        with pytest.raises(ShardingError, match="no rounds"):
            load_replay_journal(path)


class TestSpawnCleanup:
    def test_builder_failure_reaps_the_process(self):
        ctx = multiprocessing.get_context()
        with pytest.raises(ShardingError, match="failed to build"):
            spawn_worker(ctx, 0, (build_tick_host, {"bogus": 1}),
                         timeout=30.0)
        # No zombie left behind: every repro-shard child is gone.
        assert not [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard-")
        ]


class TestSupervisorUnit:
    def test_kill_recovers_bit_identical(self, tick_supervisor):
        sup, journal = tick_supervisor
        control = build_tick_host(shard_id=0)
        for r in range(3):
            control.advance(float(r + 1), _inbound(r))
            _drive(sup, journal, r, _inbound(r))
        sup.inject_kill()
        for r in range(3, 6):
            control.advance(float(r + 1), _inbound(r))
            _drive(sup, journal, r, _inbound(r))
        assert sup.restarts == 1
        assert sup.replayed_rounds == 3
        assert sup.finalize() == control.finalize()
        summary = sup.recovery_summary()
        assert summary["restarts"] == 1
        assert "ShardWorkerDied" in summary["failures"][0]

    def test_hang_recovers_bit_identical(self, tick_supervisor):
        sup, journal = tick_supervisor
        sup.window_timeout = 1.0
        control = build_tick_host(shard_id=0)
        for r in range(2):
            control.advance(float(r + 1), _inbound(r))
            _drive(sup, journal, r, _inbound(r))
        sup.inject_hang()
        sup._proxy.timeout = 1.0  # the pending read must time out fast
        for r in range(2, 4):
            control.advance(float(r + 1), _inbound(r))
            _drive(sup, journal, r, _inbound(r))
        assert sup.restarts == 1
        assert sup.replayed_rounds == 2
        assert "ShardWorkerHung" in sup.failures[0]
        assert sup.finalize() == control.finalize()

    def test_budget_exhaustion_carries_attribution(self):
        ctx = multiprocessing.get_context()
        spec = (build_tick_host, {"shard_id": 0})
        journal = ReplayJournal(1)
        proxy = spawn_worker(ctx, 0, spec, timeout=30.0)
        sup = ShardSupervisor(
            0, spec, proxy, journal, max_restarts=0,
            window_timeout=30.0, ctx=ctx,
        )
        try:
            _drive(sup, journal, 0, _inbound(0))
            sup.inject_kill()
            with pytest.raises(
                ShardingError, match="restart budget"
            ) as excinfo:
                _drive(sup, journal, 1, _inbound(1))
            assert "shard 0" in str(excinfo.value)
            assert "after round 0" in str(excinfo.value)
            assert "ShardWorkerDied" in str(excinfo.value)
        finally:
            sup.close()

    def test_replay_divergence_aborts_loudly(self, tick_supervisor):
        sup, journal = tick_supervisor
        for r in range(2):
            _drive(sup, journal, r, _inbound(r))
        # Tamper with the journaled digest: the replayed worker will
        # reproduce the true outbound, which must now mismatch.
        journal._rounds[1][0] = dataclasses.replace(
            journal._rounds[1][0], digest="0" * 16
        )
        sup.inject_kill()
        with pytest.raises(ShardingError, match="diverged on replay"):
            _drive(sup, journal, 2, _inbound(2))


class TestFaultPlanRecovery:
    """End-to-end: kill/hang a fan-out shard worker mid-run via a
    fault plan; the run must complete bit-identical to unfaulted."""

    @pytest.mark.parametrize("shards,seed", [(2, 7), (2, 11), (4, 7)])
    def test_kill_recovery_bit_identical(self, shards, seed):
        cfg = dict(CFG, seed=seed)
        base = measure_fanout_sharded(
            8, 0.1, shards=shards, network=det_fabric(),
            mode="process", **cfg
        )
        plan = FaultPlan().kill_shard(1, 2).kill_shard(shards - 1, 5)
        faulted = measure_fanout_sharded(
            8, 0.1, shards=shards, network=det_fabric(),
            mode="process", fault_plan=plan, **cfg
        )
        assert base["restarts"] == 0
        assert faulted["restarts"] == 2
        assert faulted["replayed_rounds"] > 0
        assert faulted["latencies"] == base["latencies"]
        assert faulted["completions"] == base["completions"]
        assert faulted["outcomes"] == base["outcomes"]
        assert faulted["rounds"] == base["rounds"]
        assert faulted["messages"] == base["messages"]
        per_shard = faulted["recovery"]["per_shard"]
        assert set(per_shard) == ({1, shards - 1} if shards > 2 else {1})
        for report in per_shard.values():
            assert report["restarts"] >= 1
            assert report["failures"]

    def test_hang_recovery_bit_identical(self):
        base = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(),
            mode="process", **CFG
        )
        faulted = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(), mode="process",
            fault_plan=FaultPlan().hang_shard(1, 3),
            shard_timeout=1.0, **CFG
        )
        assert faulted["restarts"] == 1
        assert faulted["latencies"] == base["latencies"]
        assert faulted["outcomes"] == base["outcomes"]
        failures = faulted["recovery"]["per_shard"][1]["failures"]
        assert any("ShardWorkerHung" in f for f in failures)

    def test_budget_exhaustion_raises(self):
        plan = FaultPlan().kill_shard(1, 2)
        with pytest.raises(ShardingError, match="restart budget") as exc:
            measure_fanout_sharded(
                8, 0.1, shards=2, network=det_fabric(), mode="process",
                fault_plan=plan, shard_restarts=0, **CFG
            )
        assert "shard 1" in str(exc.value)

    def test_journal_written_and_auditable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        result = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(), mode="process",
            audit=True, fault_plan=FaultPlan().kill_shard(1, 2),
            journal_path=path, **CFG
        )
        assert result["restarts"] == 1
        journal = load_replay_journal(path)
        assert journal.rounds == result["rounds"]
        delivered = sum(journal.message_counts().values())
        assert delivered == result["messages"]

    def test_chaos_rejected_without_process_workers(self):
        with pytest.raises(ShardingError, match="supervised"):
            measure_fanout_sharded(
                8, 0.1, shards=2, network=det_fabric(), mode="inline",
                fault_plan=FaultPlan().kill_shard(1, 2), **CFG
            )

    def test_unknown_shard_rejected(self):
        with pytest.raises(ShardingError, match="shards 0..1"):
            measure_fanout_sharded(
                8, 0.1, shards=2, network=det_fabric(), mode="process",
                fault_plan=FaultPlan().kill_shard(5, 2), **CFG
            )

    def test_simulation_faults_rejected_under_shards(self):
        with pytest.raises(ShardingError, match="simulated world"):
            measure_fanout_sharded(
                8, 0.1, shards=2, network=det_fabric(), mode="process",
                fault_plan=FaultPlan().crash(0.1, "leaf_0"), **CFG
            )


class TestShardedAudit:
    def test_audit_passes_on_clean_run(self):
        measure_fanout_sharded(
            8, 0.1, shards=3, network=det_fabric(), mode="inline",
            audit=True, **CFG
        )

    def test_missing_ledger_is_a_problem(self):
        with pytest.raises(AuditError, match="conservation"):
            audit_sharded_run([{"clock": 1.0}], messages_exchanged=0)

    def test_cross_shard_imbalance_detected(self):
        # Forge a ledger where shard 0 sent one message shard 1 never
        # received: the sent/received cross-check must flag it.
        sent = [[{"1": 1}, {}], [{}, {}]]
        recv = [[{}, {}], [{}, {}]]
        fake = [
            {"shard": i, "clock": 1.0, "events": 1,
             "conservation": {"sent": sent[i], "received": recv[i]}}
            for i in range(2)
        ]
        with pytest.raises(AuditError, match="received 0"):
            audit_sharded_run(fake, messages_exchanged=1)


class TestExperimentPlumbing:
    def test_load_point_reports_recovery(self):
        common = dict(
            qps=80.0, duration=0.4, warmup=0.1, seed=3,
            cluster_size=6, slow_fraction=0.0, network=det_fabric(),
        )
        base = measure_at_load(
            build_fanout_cluster, shards=2, mode="process", **common
        )
        faulted = measure_at_load(
            build_fanout_cluster, shards=2, mode="process",
            fault_plan=FaultPlan().kill_shard(1, 4), audit=True,
            **common
        )
        assert base.shard_recovery is None
        assert faulted.shard_recovery["restarts"] == 1
        assert dataclasses.replace(faulted, shard_recovery=None) == base

    def test_tail_at_scale_point_reports_recovery(self):
        kwargs = dict(qps=60.0, num_requests=30, seed=5)
        base = measure_tail_at_scale(
            8, 0.1, shards=2, network=det_fabric(), **kwargs
        )
        faulted = measure_tail_at_scale(
            8, 0.1, shards=2, network=det_fabric(),
            fault_plan=FaultPlan().kill_shard(1, 3), audit=True,
            **kwargs
        )
        assert base.shard_recovery is None
        assert faulted.shard_recovery["restarts"] == 1
        assert faulted.p50 == base.p50
        assert faulted.p99 == base.p99
        assert faulted.requests == base.requests

    def test_recovery_manifest_summary_aggregates(self):
        recovery = {
            "restarts": 2, "replayed_rounds": 7,
            "per_shard": {1: {"restarts": 2, "replayed_rounds": 7,
                              "failures": ["a", "b"]}},
        }
        clean = SweepPoint(10.0, 10.0, 1e-3, 1e-3, 1e-3, 1e-3, 5)
        hurt = SweepPoint(20.0, 20.0, 1e-3, 1e-3, 1e-3, 1e-3, 5,
                          shard_recovery=recovery)
        assert shard_recovery_manifest_summary([clean]) == {}
        block = shard_recovery_manifest_summary([clean, hurt, hurt])
        assert block["shard_recovery"]["restarts"] == 4
        assert block["shard_recovery"]["replayed_rounds"] == 14
        assert block["shard_recovery"]["per_shard"]["1"]["failures"] == [
            "a", "b", "a", "b",
        ]

    def test_sync_manifest_summary_aggregates(self):
        from repro.experiments.loadsweep import shard_sync_manifest_summary

        plain = SweepPoint(10.0, 10.0, 1e-3, 1e-3, 1e-3, 1e-3, 5)
        synced = SweepPoint(20.0, 20.0, 1e-3, 1e-3, 1e-3, 1e-3, 5)
        synced.shard_sync = {
            "shards": 2, "mode": "inline", "rounds": 10,
            "messages_exchanged": 7, "stalls": 1, "restarts": 1,
            "per_shard_restarts": {"1": 1},
            "straggler_rounds": {"0": 6, "1": 4},
        }
        assert shard_sync_manifest_summary([plain]) == {}
        block = shard_sync_manifest_summary(
            [plain, synced, synced]
        )["shard_sync"]
        assert block["points"] == 2 and block["rounds"] == 20
        assert block["messages_exchanged"] == 14
        assert block["stalls"] == 2 and block["restarts"] == 2
        assert block["shards"] == 2 and block["mode"] == "inline"
        assert block["straggler_rounds"] == {"0": 12, "1": 8}
        assert block["per_shard_restarts"] == {"1": 2}
