"""Sharded fan-out world vs the single-simulator reference.

The headline contract: under a draw-free propagation distribution the
sharded run is **bit-identical** to the vanilla engine for any shard
count; under a stochastic fabric, shard counts agree bitwise with each
other and with vanilla in distribution (documented departure: the
leaf->aggregator hop is drawn from per-leaf streams).
"""

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, Shifted
from repro.errors import ShardingError
from repro.hardware import NetworkFabric
from repro.shard import measure_fanout_sharded, measure_fanout_vanilla


def det_fabric():
    return NetworkFabric(propagation=Deterministic(20e-6))


def stochastic_fabric():
    return NetworkFabric(propagation=Shifted(Exponential(15e-6), 10e-6))


CFG = dict(qps=60.0, num_requests=40, seed=7)


class TestDeterministicFabricIdentity:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_count_mode_bit_identical(self, shards):
        vanilla = measure_fanout_vanilla(
            10, 0.2, network=det_fabric(), **CFG
        )
        sharded = measure_fanout_sharded(
            10, 0.2, shards=shards, network=det_fabric(),
            mode="inline", **CFG
        )
        assert sharded["shards"] == shards
        assert sharded["fallback_reason"] is None
        assert sharded["latencies"] == vanilla["latencies"]
        assert sharded["completions"] == vanilla["completions"]
        assert sharded["outcomes"] == vanilla["outcomes"]
        assert sharded["requests_sent"] == vanilla["requests_sent"]

    def test_duration_mode_bit_identical(self):
        kwargs = dict(
            qps=80.0, num_requests=None, seed=11,
            stop_at=0.4, warmup=0.1,
        )
        vanilla = measure_fanout_vanilla(
            8, 0.1, network=det_fabric(), **kwargs
        )
        sharded = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(),
            mode="inline", **kwargs
        )
        assert sharded["latencies"] == vanilla["latencies"]
        assert sharded["window"] == vanilla["window"]

    def test_process_mode_matches_inline(self):
        inline = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(), mode="inline", **CFG
        )
        process = measure_fanout_sharded(
            8, 0.1, shards=2, network=det_fabric(), mode="process", **CFG
        )
        assert process["mode"] == "process"
        assert process["latencies"] == inline["latencies"]
        assert process["rounds"] == inline["rounds"]
        assert process["messages"] == inline["messages"]


class TestStochasticFabric:
    def test_shard_counts_agree_bitwise(self):
        two = measure_fanout_sharded(
            10, 0.2, shards=2, network=stochastic_fabric(),
            mode="inline", **CFG
        )
        three = measure_fanout_sharded(
            10, 0.2, shards=3, network=stochastic_fabric(),
            mode="inline", **CFG
        )
        assert two["latencies"] == three["latencies"]
        assert two["completions"] == three["completions"]

    def test_matches_vanilla_in_distribution(self):
        vanilla = measure_fanout_vanilla(
            10, 0.2, network=stochastic_fabric(), qps=60.0,
            num_requests=200, seed=7,
        )
        sharded = measure_fanout_sharded(
            10, 0.2, shards=2, network=stochastic_fabric(), qps=60.0,
            num_requests=200, seed=7, mode="inline",
        )
        assert sharded["outcomes"] == vanilla["outcomes"]
        assert sharded["requests_sent"] == vanilla["requests_sent"]
        # The response hop uses per-leaf streams instead of the shared
        # dispatcher stream: same distribution, different draws — the
        # percentiles must agree to well under the hop's scale.
        assert sharded["p50"] == pytest.approx(vanilla["p50"], rel=0.02)
        assert sharded["p99"] == pytest.approx(vanilla["p99"], rel=0.02)
        assert np.mean(sharded["latencies"]) == pytest.approx(
            np.mean(vanilla["latencies"]), rel=0.02
        )


class TestFallback:
    def test_zero_lookahead_falls_back_to_vanilla(self):
        vanilla = measure_fanout_vanilla(6, 0.0, **CFG)
        with pytest.warns(RuntimeWarning, match="lookahead"):
            sharded = measure_fanout_sharded(
                6, 0.0, shards=2, mode="inline", **CFG
            )
        assert sharded["shards"] == 1
        assert sharded["mode"] == "single"
        assert sharded["fallback_reason"] is not None
        assert sharded["latencies"] == vanilla["latencies"]

    def test_needs_some_termination(self):
        with pytest.raises(ShardingError, match="num_requests"):
            measure_fanout_sharded(
                4, 0.0, num_requests=None, stop_at=None,
                network=det_fabric(),
            )


class TestAccounting:
    def test_event_and_job_conservation(self):
        sharded = measure_fanout_sharded(
            10, 0.2, shards=3, network=det_fabric(), mode="inline", **CFG
        )
        vanilla = measure_fanout_vanilla(10, 0.2, network=det_fabric(), **CFG)
        # Done-batching trims cross-shard notifications but every
        # request still completes and every latency sample survives.
        assert sharded["requests"] == vanilla["requests"] == 40
        assert sharded["rounds"] > 0
        assert sharded["messages"] > 0
        assert sharded["events_total"] > 0
