"""Unit tests for the shard planner."""

import pytest

from repro.distributions import Deterministic, Exponential, Shifted
from repro.errors import ShardingError
from repro.hardware import NetworkFabric
from repro.shard import fabric_lookahead, plan_shards


def det_fabric(minimum=20e-6):
    return NetworkFabric(propagation=Deterministic(minimum))


class TestFabricLookahead:
    def test_deterministic_propagation(self):
        assert fabric_lookahead(det_fabric(15e-6)) == 15e-6

    def test_shifted_propagation(self):
        fabric = NetworkFabric(
            propagation=Shifted(Exponential(10e-6), 5e-6)
        )
        assert fabric_lookahead(fabric) == 5e-6

    def test_default_exponential_is_zero(self):
        assert fabric_lookahead(NetworkFabric()) == 0.0


class TestPlanShards:
    def test_contiguous_and_balanced(self):
        machines = [f"m{i}" for i in range(8)]
        plan = plan_shards(machines, 4, det_fabric())
        assert plan.sharded
        assert plan.lookahead == 20e-6
        assert plan.fallback_reason is None
        assert [plan.assignments[m] for m in machines] == [
            0, 0, 1, 1, 2, 2, 3, 3
        ]
        assert plan.machines_of(2) == ["m4", "m5"]

    def test_assignment_is_deterministic(self):
        machines = [f"m{i}" for i in range(11)]
        plans = [plan_shards(machines, 3, det_fabric()) for _ in range(3)]
        assert plans[0].assignments == plans[1].assignments
        assert plans[1].assignments == plans[2].assignments

    def test_colocate_pins_group_together(self):
        machines = ["a", "b", "c", "d", "e", "f"]
        plan = plan_shards(
            machines, 3, det_fabric(), colocate=[["a", "d"]]
        )
        assert plan.assignments["a"] == plan.assignments["d"]

    def test_overlapping_colocate_groups_merge(self):
        machines = ["a", "b", "c", "d", "e", "f"]
        plan = plan_shards(
            machines, 2, det_fabric(), colocate=[["a", "b"], ["b", "c"]]
        )
        assert (
            plan.assignments["a"]
            == plan.assignments["b"]
            == plan.assignments["c"]
        )

    def test_colocate_unknown_machine_rejected(self):
        with pytest.raises(ShardingError, match="unknown machine"):
            plan_shards(["a", "b"], 2, det_fabric(), colocate=[["a", "zz"]])

    def test_duplicate_machine_rejected(self):
        with pytest.raises(ShardingError, match="duplicate machine"):
            plan_shards(["a", "b", "a"], 2, det_fabric())

    def test_num_shards_below_one_rejected(self):
        with pytest.raises(ShardingError, match="num_shards"):
            plan_shards(["a", "b"], 0, det_fabric())

    def test_single_shard_needs_no_lookahead(self):
        plan = plan_shards(["a", "b"], 1, NetworkFabric())
        assert not plan.sharded
        assert plan.fallback_reason is None
        assert plan.assignments == {"a": 0, "b": 0}

    def test_zero_lookahead_falls_back_loudly(self):
        with pytest.warns(RuntimeWarning, match="lookahead"):
            plan = plan_shards(["a", "b", "c"], 2, NetworkFabric())
        assert not plan.sharded
        assert plan.fallback_reason is not None
        assert set(plan.assignments.values()) == {0}

    def test_fewer_units_than_shards_falls_back_loudly(self):
        with pytest.warns(RuntimeWarning, match="placeable unit"):
            plan = plan_shards(
                ["a", "b", "c"], 3, det_fabric(),
                colocate=[["a", "b", "c"]],
            )
        assert not plan.sharded
        assert "placeable unit" in plan.fallback_reason
