"""--shards plumbing: experiment registry, load sweeps, tail@scale
routing, and the CLI all thread the shard count through — and refuse
loudly where the sharded core cannot honour a knob."""

import pytest

from repro.__main__ import main
from repro.distributions import Deterministic
from repro.errors import ReproError
from repro.experiments import registry
from repro.experiments.loadsweep import measure_at_load
from repro.experiments.tail_at_scale import (
    build_fanout_cluster,
    measure_tail_at_scale,
)
from repro.hardware import NetworkFabric


def det_fabric():
    return NetworkFabric(propagation=Deterministic(20e-6))


class TestRegistry:
    def test_fig14_supports_shards(self):
        assert registry.get("fig14").supports_shards

    def test_adapter_ported_figures_support_shards(self):
        # fig5/fig12b run through the generic world adapter since the
        # sharded_runner hooks landed on their builders.
        assert registry.get("fig5").supports_shards
        assert registry.get("fig12b").supports_shards

    def test_unported_figures_do_not(self):
        assert not registry.get("fig8").supports_shards

    def test_unsupported_experiment_rejects_shards(self):
        with pytest.raises(ReproError, match="--shards"):
            registry.get("fig8").run(shards=2)

    def test_shards_one_is_always_accepted(self):
        # shards=1 must not even consult the capability.
        spec = registry.ExperimentSpec(
            "toy", "none", "no shards kwarg", lambda: "ran"
        )
        assert not spec.supports_shards
        assert spec.run(shards=1) == "ran"
        with pytest.raises(ReproError, match="--shards"):
            spec.run(shards=2)


class TestTailAtScaleRouting:
    def test_sharded_point_matches_vanilla(self):
        vanilla = measure_tail_at_scale(
            8, 0.1, qps=60.0, num_requests=30, seed=5,
            network=det_fabric(),
        )
        sharded = measure_tail_at_scale(
            8, 0.1, qps=60.0, num_requests=30, seed=5,
            shards=2, network=det_fabric(),
        )
        assert sharded.p50 == vanilla.p50
        assert sharded.p99 == vanilla.p99
        assert sharded.requests == vanilla.requests

    @pytest.mark.parametrize("knob", [
        {"trace": True},
        {"slo": "p99<5ms"},
    ])
    def test_instrumentation_knobs_blocked_when_sharded(self, knob):
        with pytest.raises(ReproError, match="shards"):
            measure_tail_at_scale(
                4, 0.0, qps=60.0, num_requests=10,
                shards=2, network=det_fabric(), **knob
            )

    def test_audit_allowed_when_sharded(self):
        # The merged conservation audit lifted the old --audit block.
        point = measure_tail_at_scale(
            4, 0.0, qps=60.0, num_requests=10, seed=5,
            shards=2, network=det_fabric(), audit=True,
        )
        assert point.requests == 10


class TestMeasureAtLoad:
    def test_sharded_load_point_matches_vanilla(self):
        common = dict(
            qps=80.0, duration=0.4, warmup=0.1, seed=3,
            cluster_size=6, slow_fraction=0.0, network=det_fabric(),
        )
        vanilla = measure_at_load(build_fanout_cluster, **common)
        sharded = measure_at_load(
            build_fanout_cluster, shards=2, mode="inline", **common
        )
        assert sharded == vanilla

    def test_builder_without_runner_rejected(self):
        def bare_builder(seed=0):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(ReproError, match="no sharded runner"):
            measure_at_load(bare_builder, qps=10.0, shards=2)

    def test_blocked_knobs_listed(self):
        with pytest.raises(ReproError, match="slo"):
            measure_at_load(
                build_fanout_cluster, qps=10.0, shards=2, slo="p99<5ms",
                cluster_size=4, slow_fraction=0.0,
            )

    def test_shard_tuning_needs_shards(self):
        with pytest.raises(ReproError, match="shards"):
            measure_at_load(
                build_fanout_cluster, qps=10.0, shards=1,
                shard_restarts=5, cluster_size=4, slow_fraction=0.0,
            )


class TestCLI:
    def test_shards_rejected_for_unsupported_experiment(self, capsys):
        code = main(["experiments", "run", "fig8", "--shards", "2"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_shard_tuning_needs_shards(self, capsys):
        code = main([
            "experiments", "run", "fig14", "--shard-restarts", "5",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_shard_tuning_rejected_for_unsupported_runner(self):
        spec = registry.ExperimentSpec(
            "toy", "none", "shards but no tuning",
            lambda shards=1: "ran",
        )
        assert spec.supports_shards
        assert not spec.supports_shard_tuning
        with pytest.raises(ReproError, match="supervisor knobs"):
            spec.run(shards=2, shard_timeout=1.0)
