"""Conservative-sync correctness: guards, stalls, and the central
property — mailbox exchange delivers exactly what in-process dispatch
would, across seeds, window caps and shard counts."""

import math

import pytest

from repro.engine import PRIORITY_ARRIVAL, Simulator
from repro.errors import ShardingError
from repro.shard import ConservativeCoordinator, ShardHost, ShardMessage

LOOKAHEAD = 1e-3


class ToyHost(ShardHost):
    """A self-ticking shard that pings its ring neighbour; every ping
    is answered by a pong. Stamps carry an RNG gap on top of the
    lookahead so delivery times are irregular."""

    def __init__(self, shard_id, n_shards, ticks, sim=None, seed=0):
        if sim is None:
            sim = Simulator(seed=seed)
        super().__init__(shard_id, sim, LOOKAHEAD)
        self.n_shards = n_shards
        self._ticks = ticks
        self._rng = sim.random.stream(f"toy/shard{shard_id}")
        self.log = []
        self.sim.schedule_at(0.0, self._tick, 0)

    def _tick(self, k):
        now = self.sim.now
        self.log.append(("tick", now, k))
        gap = float(self._rng.exponential(5e-4))
        dst = (self.shard_id + 1) % self.n_shards
        self.deliver_to(dst, now + LOOKAHEAD + gap, "ping", (self.shard_id, k))
        if k + 1 < self._ticks:
            wait = float(self._rng.exponential(1e-3))
            self.sim.schedule_at(now + wait, self._tick, k + 1)

    def handle(self, message):
        self.log.append((message.kind, message.time, message.payload))
        if message.kind == "ping":
            src, k = message.payload
            self.deliver_to(
                src, self.sim.now + LOOKAHEAD, "pong", (self.shard_id, k)
            )

    def deliver_to(self, dst, time, kind, payload):
        self.send(dst, time, kind, payload)


class LocalToyHost(ToyHost):
    """The in-process reference: identical model, but ``deliver_to``
    schedules straight onto the peer's (shared) simulator instead of
    going through the mailbox."""

    peers = None

    def deliver_to(self, dst, time, kind, payload):
        message = ShardMessage(
            time=float(time), priority=PRIORITY_ARRIVAL,
            src_shard=self.shard_id, seq=0, kind=kind, payload=payload,
        )
        self.sim.schedule_at(
            time, self.peers[dst].handle, message,
            priority=PRIORITY_ARRIVAL,
        )


def mesh_edges(n):
    return {
        (i, j): LOOKAHEAD for i in range(n) for j in range(n) if i != j
    }


def run_reference(n_shards, ticks, seed):
    sim = Simulator(seed=seed)
    hosts = [
        LocalToyHost(i, n_shards, ticks, sim=sim) for i in range(n_shards)
    ]
    for host in hosts:
        host.peers = hosts
    sim.run()
    return [host.log for host in hosts]


def run_mailbox(n_shards, ticks, seed, max_window=None):
    hosts = [
        ToyHost(i, n_shards, ticks, seed=seed) for i in range(n_shards)
    ]
    coordinator = ConservativeCoordinator(
        hosts, mesh_edges(n_shards), max_window=max_window
    )
    coordinator.run()
    return [host.log for host in hosts], coordinator


class TestMailboxEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_mailbox_matches_in_process(self, seed, n_shards):
        reference = run_reference(n_shards, ticks=20, seed=seed)
        sharded, _ = run_mailbox(n_shards, ticks=20, seed=seed)
        assert sharded == reference

    @pytest.mark.parametrize("max_window", [None, 2e-3, 5e-4, 1e-5])
    def test_window_cap_changes_rounds_not_results(self, max_window):
        reference = run_reference(3, ticks=15, seed=5)
        sharded, coordinator = run_mailbox(
            3, ticks=15, seed=5, max_window=max_window
        )
        assert sharded == reference
        assert coordinator.rounds > 0
        assert coordinator.messages_exchanged > 0

    def test_tighter_window_means_more_rounds(self):
        _, loose = run_mailbox(2, ticks=15, seed=9)
        _, tight = run_mailbox(2, ticks=15, seed=9, max_window=1e-5)
        assert tight.rounds > loose.rounds


class IdleHost(ShardHost):
    def __init__(self, shard_id):
        super().__init__(shard_id, Simulator(seed=0), LOOKAHEAD)

    def handle(self, message):  # pragma: no cover - never delivered
        raise AssertionError


class TestGuards:
    def test_send_below_lookahead_rejected(self):
        host = IdleHost(0)
        with pytest.raises(ShardingError, match="conservative windows"):
            host.send(1, host.sim.now + LOOKAHEAD / 2, "x", ())

    def test_send_at_exact_lookahead_allowed(self):
        host = IdleHost(0)
        host.send(1, host.sim.now + LOOKAHEAD, "x", ())

    def test_receive_in_past_rejected(self):
        host = ToyHost(0, 2, ticks=3, seed=0)
        host.advance(0.01, [])
        stale = ShardMessage(
            time=0.001, priority=0, src_shard=1, seq=1, kind="x", payload=(),
        )
        with pytest.raises(ShardingError, match="not conservative"):
            host.advance(0.02, [stale])

    def test_nonpositive_edge_lookahead_rejected(self):
        hosts = [IdleHost(0), IdleHost(1)]
        with pytest.raises(ShardingError, match="non-positive"):
            ConservativeCoordinator(hosts, {(0, 1): 0.0, (1, 0): 1e-3})

    def test_edge_outside_range_rejected(self):
        with pytest.raises(ShardingError, match="outside"):
            ConservativeCoordinator([IdleHost(0)], {(0, 5): 1e-3})

    def test_bad_max_window_rejected(self):
        with pytest.raises(ShardingError, match="max_window"):
            ConservativeCoordinator([IdleHost(0)], {}, max_window=0.0)

    def test_unknown_destination_shard_rejected(self):
        class Misrouter(ShardHost):
            def __init__(self):
                super().__init__(0, Simulator(seed=0), LOOKAHEAD)
                self.sim.schedule_at(0.0, self._go)

            def _go(self):
                self.send(7, self.sim.now + LOOKAHEAD, "x", ())

            def handle(self, message):  # pragma: no cover
                raise AssertionError

        coordinator = ConservativeCoordinator(
            [Misrouter(), IdleHost(1)],
            {(0, 1): LOOKAHEAD, (1, 0): LOOKAHEAD},
        )
        with pytest.raises(ShardingError, match="unknown shard"):
            coordinator.run()


class LyingHost(ShardHost):
    """Reports a horizon it never executes — a broken host contract
    the stall detector must catch rather than loop forever."""

    def __init__(self, shard_id):
        super().__init__(shard_id, Simulator(seed=0), LOOKAHEAD)

    def horizon(self):
        return 5.0

    def handle(self, message):  # pragma: no cover
        raise AssertionError


class TestStallDetection:
    def test_stalled_rounds_raise(self):
        hosts = [LyingHost(0), LyingHost(1)]
        coordinator = ConservativeCoordinator(
            hosts, {(0, 1): LOOKAHEAD, (1, 0): LOOKAHEAD}
        )
        with pytest.raises(ShardingError, match="stalled"):
            coordinator.run()


class TestEndTime:
    def test_events_past_end_time_do_not_count(self):
        host = IdleHost(0)
        host.end_time = 1.0
        host.sim.schedule_at(2.0, lambda: None)
        assert math.isinf(host.horizon())

    def test_event_exactly_at_end_time_counts(self):
        host = IdleHost(0)
        host.end_time = 1.0
        host.sim.schedule_at(1.0, lambda: None)
        assert host.horizon() == 1.0
        horizon, out = host.advance(5.0, [])
        assert math.isinf(horizon)
        assert host.sim.events_processed == 1
        assert out == []
