"""Generic shard adapter vs the single-simulator reference.

The contracts under test (see ``repro.shard.adapter``):

* ``shards=1`` is bit-identical to vanilla for every ported topology
  (the planner falls back onto the *same* ``measure_vanilla_point``
  call with the same derived seed).
* Under a draw-free fabric, shard counts are bit-identical to each
  other at any load, and — at loads where no two messages hit the same
  queue at the same instant, as here — bit-identical to the vanilla
  engine too, for the two-tier chain and the Social Network graph.
* Telemetry lifted by this PR — ``trace``/``trace_dir``, ``slo``,
  ``mix`` — merges at the root into the same results the vanilla path
  produces, and ships **nothing** cross-shard when switched off.
* Supervision/replay (shard kill + journal replay) works unchanged for
  adapter-built worlds.
"""

import json
from pathlib import Path

import pytest

from repro.apps import social_network, two_tier
from repro.distributions import Deterministic
from repro.experiments.loadsweep import (
    find_shard_journal,
    measure_vanilla_point,
    shard_journal_name,
)
from repro.faults.plan import FaultPlan
from repro.hardware import NetworkFabric
from repro.runner import derive_seed
from repro.shard.adapter import (
    build_world_shard_host,
    sharded_load_point,
)
from repro.shard.partition import plan_shards
from repro.shard.worker import run_sharded
from repro.telemetry.tracing import TraceConfig


def det_fabric():
    return NetworkFabric(propagation=Deterministic(50e-6))


SEED = derive_seed(11, 2000.0)
TT = dict(qps=2000.0, duration=0.05, warmup=0.01)
SN = dict(qps=1000.0, duration=0.05, warmup=0.01)


def vanilla(build, cfg, **kwargs):
    return measure_vanilla_point(
        build, cfg["qps"], cfg["duration"], cfg["warmup"], SEED,
        network=det_fabric(), **kwargs,
    )


def sharded(build, cfg, shards, **kwargs):
    kwargs.setdefault("network", det_fabric())
    return sharded_load_point(
        build, cfg["qps"], cfg["duration"], cfg["warmup"], SEED, shards,
        mode=kwargs.pop("mode", "inline"), **kwargs,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2])
    def test_two_tier_matches_vanilla(self, shards):
        assert sharded(two_tier, TT, shards) == vanilla(two_tier, TT)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_social_network_matches_vanilla(self, shards):
        assert (
            sharded(social_network, SN, shards)
            == vanilla(social_network, SN)
        )

    def test_social_shard_counts_agree_bitwise(self):
        assert (
            sharded(social_network, SN, 2)
            == sharded(social_network, SN, 4)
        )

    def test_shards1_falls_back_to_vanilla(self):
        # One shard never plans a sharded run; the fallback is the
        # untouched vanilla measurement with the same derived seed.
        assert sharded(two_tier, TT, 1) == vanilla(two_tier, TT)

    def test_zero_lookahead_falls_back_loudly(self):
        # The default fabric's Exponential propagation has minimum 0,
        # so the planner warns and the result is still exact.
        with pytest.warns(RuntimeWarning, match="lookahead"):
            point = sharded_load_point(
                two_tier, TT["qps"], TT["duration"], TT["warmup"],
                SEED, 2, mode="inline",
            )
        ref = measure_vanilla_point(
            two_tier, TT["qps"], TT["duration"], TT["warmup"], SEED,
        )
        assert point == ref

    def test_audit_passes_sharded(self):
        assert (
            sharded(social_network, SN, 4, audit=True)
            == vanilla(social_network, SN)
        )


def _normalized_otlp(path):
    """OTLP export with trace ids mapped to first-appearance order.

    Request ids come from a process-global counter, so two runs in the
    same process never share literal ids — everything else must match.
    """
    doc = json.loads(Path(path).read_text())
    mapping = {}
    for rs in doc["resourceSpans"]:
        for ss in rs.get("scopeSpans", []):
            for span in ss["spans"]:
                tid = span["traceId"]
                span["traceId"] = mapping.setdefault(tid, len(mapping))
    return doc


class TestLiftedTelemetry:
    def test_trace_dir_merged_export(self, tmp_path):
        vdir, sdir = tmp_path / "vanilla", tmp_path / "sharded"
        vanilla(two_tier, TT, trace=True, trace_dir=vdir)
        sharded(two_tier, TT, 2, trace=True, trace_dir=sdir)
        for stem in ("qps2000.otlp.json", "qps2000.perfetto.json"):
            assert (sdir / stem).exists()
        assert (
            _normalized_otlp(sdir / "qps2000.otlp.json")
            == _normalized_otlp(vdir / "qps2000.otlp.json")
        )

    def test_trace_config_sampling_zero_is_noop(self):
        # A sampling-disabled TraceConfig must not trip the blocked-knob
        # check nor perturb the measurement.
        off = TraceConfig(sample_rate=0.0)
        assert (
            sharded(two_tier, TT, 2, trace=off) == vanilla(two_tier, TT)
        )

    def test_slo_summary_matches_vanilla(self):
        vp = vanilla(two_tier, TT, slo="p99<5ms")
        sp = sharded(two_tier, TT, 2, slo="p99<5ms")
        assert vp.slo is not None
        assert sp == vp

    def test_mix_matches_vanilla(self):
        from repro.workload.request_mix import RequestMix, RequestType

        def mk_mix():
            return RequestMix([
                RequestType("read", 0.7, Deterministic(256.0)),
                RequestType("write", 0.3, Deterministic(512.0)),
            ])

        assert (
            sharded(social_network, SN, 2, mix=mk_mix())
            == vanilla(social_network, SN, mix=mk_mix())
        )

    def test_telemetry_off_ships_nothing(self):
        # With trace/slo off the per-shard results must carry no
        # telemetry freight at all — the finalize() payloads are the
        # cross-shard shipping surface.
        world = two_tier(seed=SEED, network=det_fabric())
        plan = plan_shards(
            world.cluster.machine_names, 2, world.cluster.network
        )
        assert plan.sharded
        common = dict(
            builder=two_tier,
            world_kwargs={"network": det_fabric()},
            seed=SEED,
            assignments=dict(plan.assignments),
            lookahead=plan.lookahead,
            qps=TT["qps"], duration=TT["duration"], warmup=TT["warmup"],
            client_machine="client", mix=None, trace=False, slo=None,
        )
        specs = [
            (build_world_shard_host, dict(common, shard_id=i))
            for i in range(plan.num_shards)
        ]
        edges = {(i, j): plan.lookahead for i in range(2) for j in range(2)
                 if i != j}
        results, _ = run_sharded(specs, edges, mode="inline")
        for result in results:
            assert "trace_spans" not in result
            assert "traces" not in result
            assert "slo" not in result


class TestSupervisedRecovery:
    def test_kill_replay_two_tier(self):
        # examples/chaos/shard_kill.json targets shards 1 and 3; the
        # two-tier world plans at most 2 shards, so keep the valid kill.
        from repro.faults import load_fault_plan

        plan = load_fault_plan("examples/chaos/shard_kill.json")
        plan = FaultPlan([f for f in plan.shard_faults() if f.shard < 2])
        assert len(plan) == 1
        clean = sharded(two_tier, TT, 2, mode="process")
        chaos = sharded(
            two_tier, TT, 2, mode="process",
            fault_plan=plan, shard_restarts=3,
        )
        recovery = chaos.shard_recovery
        assert recovery is not None and recovery["restarts"] == 1
        for field in ("offered_qps", "throughput", "mean", "p50", "p95",
                      "p99", "completed", "slo"):
            assert getattr(chaos, field) == getattr(clean, field)


class TestJournalNaming:
    def test_seed_keyed_names_never_collide(self):
        # 1000000.0 and 1000000.4 both format as 1e+06 under %g — the
        # legacy filenames collide, the seed-keyed ones cannot.
        qa, qb = 1000000.0, 1000000.4
        assert f"{qa:g}" == f"{qb:g}"
        sa, sb = derive_seed(1, qa), derive_seed(1, qb)
        assert shard_journal_name(sa) != shard_journal_name(sb)

    def test_find_prefers_seed_keyed_name(self, tmp_path):
        derived = derive_seed(1, 500.0)
        new = tmp_path / shard_journal_name(derived)
        legacy = tmp_path / "shard_journal_qps500.jsonl"
        legacy.write_text("")
        assert find_shard_journal(tmp_path, derived, 500.0) == legacy
        new.write_text("")
        assert find_shard_journal(tmp_path, derived, 500.0) == new

    def test_find_returns_none_when_missing(self, tmp_path):
        assert find_shard_journal(tmp_path, 1234, 500.0) is None
