"""Figure 14: the tail-at-scale effects of request fanout.

Expected shape: with a fixed fraction of 10x-slower servers, p99 rises
with cluster size; for clusters >= 100 servers, 1% slow servers is
already enough to let the stragglers define the tail (paper SSV-A,
consistent with Dean & Barroso).
"""

from repro.experiments.tail_at_scale import tail_at_scale_sweep
from repro.telemetry import format_table

from .conftest import JOBS, run_once, scaled_n

CLUSTER_SIZES = (5, 10, 50, 100, 500, 1000)
SLOW_FRACTIONS = (0.0, 0.01, 0.05, 0.10)


def test_fig14_tail_at_scale(benchmark, emit):
    points = run_once(
        benchmark, tail_at_scale_sweep,
        cluster_sizes=CLUSTER_SIZES,
        slow_fractions=SLOW_FRACTIONS,
        num_requests=scaled_n(150),
        jobs=JOBS,
    )
    emit("\n=== Figure 14: tail at scale (p99 ms by cluster size) ===")
    by_key = {(p.slow_fraction, p.cluster_size): p for p in points}
    rows = []
    for size in CLUSTER_SIZES:
        rows.append(
            [size] + [
                by_key[(frac, size)].p99 * 1e3 for frac in SLOW_FRACTIONS
            ]
        )
    emit(format_table(
        ["cluster size"] + [f"{f:.0%} slow" for f in SLOW_FRACTIONS], rows
    ))

    # 1% slow servers dominates the tail at >= 100 servers...
    clean = by_key[(0.0, 100)].p99
    one_percent = by_key[(0.01, 100)].p99
    emit(f"\n100 servers: p99 {clean*1e3:.1f} ms clean vs "
         f"{one_percent*1e3:.1f} ms with 1% slow")
    assert one_percent > 2 * clean
    # ...and the tail grows with cluster size at fixed slow fraction.
    assert by_key[(0.01, 1000)].p99 > by_key[(0.01, 10)].p99
