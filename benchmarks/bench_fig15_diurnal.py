"""Figure 15: the diurnal input load used by the power-management
study.

Regenerates the load-over-time series two ways: the analytic pattern
and the arrival counts an open-loop client actually produced, binned —
the two must track each other.
"""

import numpy as np

from repro.apps import two_tier
from repro.telemetry import TimeSeries, format_series, format_table
from repro.workload import DiurnalPattern, OpenLoopClient

from .conftest import run_once, scaled

LOW, HIGH, PERIOD = 3_000.0, 12_000.0, 15.0


def generate_series(duration):
    pattern = DiurnalPattern(low=LOW, high=HIGH, period=PERIOD)
    world = two_tier(nginx_processes=2, memcached_threads=1, seed=5)
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=pattern, stop_at=duration
    )
    arrivals = TimeSeries("arrivals")
    original_fire = client._fire

    def counting_fire():
        arrivals.append(world.sim.now, 1.0)
        original_fire()

    client._fire = counting_fire
    client.start()
    world.sim.run(until=duration)
    bin_width = 1.0
    centres, counts = arrivals.resample(bin_width, reducer=np.sum)
    measured_qps = counts / bin_width
    analytic = np.array([pattern.rate(t) for t in centres])
    return centres, measured_qps, analytic


def test_fig15_diurnal_load(benchmark, emit):
    duration = max(15.0, scaled(15.0))
    centres, measured, analytic = run_once(benchmark, generate_series, duration)
    emit("\n=== Figure 15: diurnal input load ===")
    emit(format_series("offered (analytic)", centres, analytic, "t s", "QPS"))
    emit(format_series("generated (client)", centres, measured, "t s", "QPS"))
    rows = [
        [round(t, 1), round(a), round(m)]
        for t, a, m in zip(centres, analytic, measured)
    ]
    emit(format_table(["t (s)", "analytic QPS", "measured QPS"], rows))
    # The generated load must track the pattern within Poisson noise.
    rel_err = np.abs(measured - analytic) / analytic
    assert np.median(rel_err) < 0.15
    # And actually fluctuate diurnally.
    assert measured.max() > 2.5 * measured.min()
