"""Figure 12(b): validation of the Social Network application (Fig 11).

Expected shape: at low load the simulator closely matches the real
system's latency; both saturate at a similar throughput. The request
graph exercises fanout, synchronisation, and blocking simultaneously.
"""

from repro.experiments.validation import fig12b_social_network
from repro.telemetry import format_table

from .conftest import (
    JOBS,
    SWEEP_HEADERS,
    presaturation_deviation,
    run_once,
    scaled,
    sweep_rows,
)


def test_fig12b_social_network(benchmark, emit):
    pair = run_once(
        benchmark, fig12b_social_network,
        duration=scaled(0.5), warmup=scaled(0.12), jobs=JOBS,
    )
    emit("\n=== Figure 12(b): Social Network end-to-end validation ===")
    emit(format_table(SWEEP_HEADERS, sweep_rows(pair)))
    mean_dev, tail_dev = presaturation_deviation(pair)
    if mean_dev is not None:
        emit(f"pre-saturation |sim-real|: mean {mean_dev*1e3:.2f} ms, "
             f"p99 {tail_dev*1e3:.2f} ms")
        # "At low load, uqSim closely matches the latency of the real
        # application."
        assert mean_dev < 1e-3
