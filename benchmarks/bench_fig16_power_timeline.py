"""Figure 16: tail latency and per-tier frequency timelines under the
power-management algorithm (Algorithm 1), simulated and "real".

Expected shape: frequencies track the diurnal load (down in the trough,
up toward the peak); tail latency converges well below the 5 ms QoS
(the paper lands near 2 ms) because DVFS offers only discrete speed
steps; the real system's timeline is noisier than the simulated one.
"""

import numpy as np

from repro.experiments.power_mgmt import run_power_experiment
from repro.power import energy_report
from repro.telemetry import format_table
from repro.testbed import RealismConfig

from .conftest import run_once, scaled


def run_both(duration):
    sim_result = run_power_experiment(
        decision_interval=0.5, duration=duration, seed=2
    )
    real_result = run_power_experiment(
        decision_interval=0.5, duration=duration, seed=9,
        realism=RealismConfig(),
    )
    return sim_result, real_result


def test_fig16_power_timeline(benchmark, emit):
    duration = max(30.0, scaled(30.0))
    sim_result, real_result = run_once(benchmark, run_both, duration)
    emit("\n=== Figure 16: power management timeline (0.5 s interval) ===")
    for label, result in (("simulated", sim_result), ("real", real_result)):
        t, p99 = result.p99_series.resample(2.0, reducer=np.mean)
        freq_rows = {}
        for tier, series in result.frequency_series.items():
            ft, fv = series.resample(2.0, reducer=np.mean)
            freq_rows[tier] = dict(zip(np.round(ft, 1), fv))
        rows = [
            [round(ti, 1), p * 1e3,
             round(freq_rows["nginx"].get(round(ti, 1), np.nan) / 1e9, 2),
             round(freq_rows["memcached"].get(round(ti, 1), np.nan) / 1e9, 2)]
            for ti, p in zip(t, p99)
        ]
        emit(format_table(
            ["t (s)", "p99 ms", "nginx GHz", "memcached GHz"], rows,
            title=f"\n[{label}] QoS target 5 ms",
        ))
        emit(f"[{label}] mean p99 {result.mean_p99*1e3:.2f} ms, "
             f"violations {result.violation_rate:.1%}")

    # Energy outcome of the DVFS schedule (library extension).
    report = energy_report(
        sim_result.frequency_series,
        {"nginx": 2, "memcached": 1},
        t_end=duration,
    )
    emit(f"\nenergy: {report.managed_joules:.0f} J managed vs "
         f"{report.baseline_joules:.0f} J at max frequency "
         f"({report.savings_fraction:.0%} saved)")
    assert report.savings_fraction >= 0.0

    # Convergence below QoS but above the full-speed floor (DVFS
    # granularity keeps it from hugging the target).
    assert sim_result.mean_p99 < sim_result.qos_target
    # Frequencies actually moved during the run.
    nginx_freqs = sim_result.frequency_series["nginx"].values
    assert nginx_freqs.max() > nginx_freqs.min()
    # The real system is noisier than the simulator.
    sim_std = np.std(sim_result.p99_series.values)
    real_std = np.std(real_result.p99_series.values)
    assert real_std > sim_std * 0.8  # noisier or comparable, never cleaner
