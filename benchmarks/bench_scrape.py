"""Scrape-loop overhead and timeline export smoke.

Two guarantees of the sim-time telemetry pipeline, checked on every
push:

* **Disabled scraping is free.** The scrape loop is just scheduled
  events; with no ``--scrape-interval`` nothing is scheduled, and the
  raw engine event rate stays within measurement noise of the baseline
  ``bench_scalability.py`` recorded earlier in the same session (the
  same <2% regression budget ``bench_tracing.py`` enforces, widened
  only by the observed run-to-run noise of the machine).
* **Enabled scraping exports a working timeline and never changes
  results.** A scrape-enabled sweep point must produce the same
  latency outcome as the scrape-off run (samples only read state and
  draw no randomness), write a schema-tagged ``timeseries.json``
  artifact (uploaded by CI), and the measured wall-clock overhead of
  the scrape loop is recorded into ``BENCH_engine.json``.
"""

import json
import os
import time
from pathlib import Path

from repro.apps import two_tier
from repro.experiments.loadsweep import measure_at_load
from repro.telemetry import load_timeline

from . import conftest as bench
from .bench_scalability import raw_engine_throughput
from .conftest import bench_record, run_once, scaled

#: Where the scrape-enabled sweep exports its timeline artifact
#: (shared with the trace artifacts so one CI upload covers both).
TRACE_DIR = Path(os.environ.get("REPRO_TRACE_DIR", "trace_artifacts"))

#: Deliberately distinct from bench_tracing's 20k point so the two
#: benches never overwrite each other's per-load export files.
QPS = 15_000

SCRAPE_INTERVAL = 0.01


def test_scrape_disabled_throughput_within_noise(benchmark, emit):
    rates = run_once(
        benchmark,
        lambda: [raw_engine_throughput(100_000) for _ in range(3)],
    )
    rate = max(rates)
    spread = (max(rates) - min(rates)) / max(rates)
    # The regression budget is 2%; machines whose repeated measurements
    # disagree by more than that get the benefit of their own noise.
    tolerance = max(0.02, 2.0 * spread)
    emit("\n=== Scrape: scrape-disabled engine throughput ===")
    emit(f"event loop: {rate / 1e3:.0f}k events/s "
         f"(spread {spread:.1%}, tolerance {tolerance:.1%})")
    payload = {
        "unscraped_events_per_s": round(rate),
        "noise_spread": round(spread, 4),
    }
    baseline = None
    try:
        fresh = os.path.getmtime(bench.BENCH_JSON) >= bench._SESSION_START
        if fresh:
            with open(bench.BENCH_JSON) as fh:
                baseline = json.load(fh)["engine"]["raw_events_per_s"]
    except (OSError, ValueError, KeyError):
        baseline = None
    if baseline is not None:
        # Same machine, same session: the only difference from the
        # baseline measurement is that the scrape module is loaded.
        payload["baseline_events_per_s"] = baseline
        payload["ratio"] = round(rate / baseline, 4)
        emit(f"baseline (this session): {baseline / 1e3:.0f}k events/s "
             f"-> ratio {rate / baseline:.3f}")
        assert rate >= baseline * (1.0 - tolerance), (
            f"scrape-disabled engine rate {rate:.0f}/s fell more than "
            f"{tolerance:.1%} below the session baseline {baseline:.0f}/s"
        )
    else:
        emit("no fresh BENCH_engine.json baseline in this session; "
             "recorded the measurement only")
    bench_record("scrape", payload)


def test_scrape_enabled_exports_timeline_without_changing_results(
    benchmark, emit
):
    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    duration, warmup = scaled(0.3), scaled(0.075)

    def both():
        t0 = time.perf_counter()
        off = measure_at_load(
            two_tier, QPS, duration=duration, warmup=warmup,
        )
        t1 = time.perf_counter()
        on = measure_at_load(
            two_tier, QPS, duration=duration, warmup=warmup,
            scrape_interval=SCRAPE_INTERVAL, trace_dir=TRACE_DIR,
        )
        t2 = time.perf_counter()
        return off, on, t1 - t0, t2 - t1

    off, on, wall_off, wall_on = run_once(benchmark, both)

    # Scraping reads state and draws no randomness: the measured
    # outcome must be identical, not merely close.
    assert on.completed == off.completed
    assert on.p99 == off.p99 and on.mean == off.mean
    assert off.timeline is None and on.timeline is not None

    timeline_path = TRACE_DIR / f"qps{QPS}.timeseries.json"
    assert timeline_path.exists()
    payload = load_timeline(timeline_path)
    series = payload["series"]
    assert "client/qps" in series and any(
        name.startswith("util/") for name in series
    )
    samples = sum(len(data["times"]) for data in series.values())
    assert samples > 0

    overhead = wall_on / wall_off if wall_off > 0 else 0.0
    emit("\n=== Scrape: scrape-enabled sweep export ===")
    emit(f"{QPS} qps point: {on.completed} completed, "
         f"{len(series)} series / {samples} samples "
         f"(interval {SCRAPE_INTERVAL}s) -> {timeline_path}")
    emit(f"wall overhead: {wall_off:.2f}s off vs {wall_on:.2f}s on "
         f"(x{overhead:.2f}, includes trace export)")
    bench_record("scrape", {
        "timeline_series": len(series),
        "timeline_samples": samples,
        "timeline_bytes": timeline_path.stat().st_size,
        "scrape_on_wall_ratio": round(overhead, 3),
    })
