"""Figure 13: uqSim vs BigHouse on single-process NGINX and 4-thread
memcached.

Expected shape: uqSim tracks the real system's saturation point closely
while BigHouse — which folds each application into ONE queue and so
charges the full epoll cost to every request instead of amortising it
across the batch — reports higher tails and saturates at lower load.
"""

from repro.experiments.comparison import memcached_panel, nginx_panel
from repro.telemetry import format_table

from .conftest import run_once, scaled


def _rows(points):
    return [
        [p.offered_qps, p.real_p99 * 1e3, p.uqsim_p99 * 1e3,
         p.bighouse_p99 * 1e3]
        for p in points
    ]


HEADERS = ["load QPS", "real p99 ms", "uqsim p99 ms", "bighouse p99 ms"]


def _knee(points, attr):
    """First load whose p99 exceeds 10x the low-load p99 (inf if none)."""
    baseline = getattr(points[0], attr)
    for p in points:
        if getattr(p, attr) > 10 * baseline:
            return p.offered_qps
    return float("inf")


def test_fig13_nginx_panel(benchmark, emit):
    points = run_once(
        benchmark, nginx_panel, duration=scaled(0.4), warmup=scaled(0.1)
    )
    emit("\n=== Figure 13 (left): single-process NGINX ===")
    emit(format_table(HEADERS, _rows(points)))
    uq_knee = _knee(points, "uqsim_p99")
    bh_knee = _knee(points, "bighouse_p99")
    emit(f"saturation knee: uqsim {uq_knee:g} QPS vs bighouse {bh_knee:g} QPS")
    # BigHouse (no batch amortisation) saturates at or before uqSim...
    assert bh_knee <= uq_knee
    # ...and overestimates the tail at the top load.
    assert points[-1].bighouse_p99 > points[-1].uqsim_p99


def test_fig13_memcached_panel(benchmark, emit):
    points = run_once(
        benchmark, memcached_panel, duration=scaled(0.3), warmup=scaled(0.08)
    )
    emit("\n=== Figure 13 (right): 4-thread memcached ===")
    emit(format_table(HEADERS, _rows(points)))
    uq_knee = _knee(points, "uqsim_p99")
    bh_knee = _knee(points, "bighouse_p99")
    emit(f"saturation knee: uqsim {uq_knee:g} QPS vs bighouse {bh_knee:g} QPS")
    # memcached's heavily batched stages make the gap dramatic: BigHouse
    # saturates at much lower load than uqSim/real (paper SSIV-E), while
    # uqSim still tracks the real system at BigHouse's knee.
    assert bh_knee < uq_knee
    assert points[-1].bighouse_p99 > 5 * points[-1].uqsim_p99
