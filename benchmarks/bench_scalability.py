"""Simulator scalability: raw event throughput and wall-clock cost of
simulating clusters of growing size.

Not a paper figure, but evidence for the title claim ("scalable
simulation"): event-processing rate should stay roughly flat as the
simulated cluster grows from 10 to 500 fanout leaves — cost per
simulated request scales with work done, not with world size.
"""

import time

from repro.engine import Simulator
from repro.experiments.tail_at_scale import build_fanout_cluster
from repro.telemetry import format_table
from repro.workload import OpenLoopClient

from .conftest import bench_record, run_once, scaled_n


def raw_engine_throughput(n_events=200_000):
    sim = Simulator(seed=0)

    def chain():
        if sim.events_processed < n_events:
            sim.schedule(1e-6, chain)

    for _ in range(64):
        sim.schedule(0.0, chain)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_processed / elapsed


def cluster_cost(cluster_size, requests):
    world = build_fanout_cluster(cluster_size, slow_fraction=0.0, seed=3)
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=30, max_requests=requests
    )
    client.start()
    start = time.perf_counter()
    world.sim.run()
    elapsed = time.perf_counter() - start
    return world.sim.events_processed, elapsed


def test_engine_event_throughput(benchmark, emit):
    rate = run_once(benchmark, raw_engine_throughput)
    emit(f"\n=== Scalability: raw engine throughput ===")
    emit(f"event loop: {rate/1e3:.0f}k events/s")
    bench_record("engine", {"raw_events_per_s": round(rate)})
    assert rate > 50_000


def test_cluster_size_scaling(benchmark, emit):
    requests = scaled_n(60)

    def sweep():
        return {
            size: cluster_cost(size, requests)
            for size in (10, 50, 200, 500)
        }

    results = run_once(benchmark, sweep)
    emit("\n=== Scalability: per-event cost vs simulated cluster size ===")
    rows = []
    rates = {}
    for size, (events, elapsed) in results.items():
        rate = events / elapsed
        rates[size] = rate
        rows.append([size, events, round(elapsed, 2), round(rate / 1e3)])
    emit(format_table(
        ["cluster size", "events", "wall s", "k events/s"], rows
    ))
    bench_record("cluster_scaling", {
        str(size): {
            "events": events,
            "wall_s": round(elapsed, 4),
            "events_per_s": round(events / elapsed),
        }
        for size, (events, elapsed) in results.items()
    })
    # The per-size rate table also rides the "engine" section, so one
    # key in BENCH_engine.json answers "how fast is the engine at what
    # world size" without joining sections.
    bench_record("engine", {
        "cluster_events_per_s": {
            str(size): round(rate) for size, rate in rates.items()
        }
    })
    # Event rate must not collapse with world size (>= 1/4 of small-world
    # rate even at 50x the cluster size).
    assert rates[500] > rates[10] / 4
