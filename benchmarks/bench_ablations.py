"""Ablations of the design choices DESIGN.md SS4 calls out.

Each ablation removes one modelling ingredient and shows the resulting
error — evidence that the ingredient is load-bearing, not decoration.

* batch amortisation (epoll) — without it the 2-tier app saturates
  early, exactly the BigHouse failure mode of Fig 13;
* the shared network-processing (soft_irq) service — without it, load
  balancing scales linearly to 16 webservers, contradicting Fig 8;
* http/1.1 connection blocking — without it, a small connection pool
  no longer limits concurrency and latency under load drops;
* the multi-threaded execution model — thread-count limits disappear
  under the simple model.
"""

from repro.apps import load_balanced, two_tier
from repro.experiments import measure_at_load, saturation_load
from repro.experiments.loadsweep import load_latency_sweep
from repro.telemetry import format_table

from .conftest import run_once, scaled


def ablate_batching(duration, warmup):
    loads = (40_000, 55_000, 62_000)
    with_batching = load_latency_sweep(
        two_tier, loads, duration, warmup, batching=True
    )
    without = load_latency_sweep(
        two_tier, loads, duration, warmup, batching=False
    )
    return with_batching, without


def test_ablation_epoll_batching(benchmark, emit):
    with_batching, without = run_once(
        benchmark, ablate_batching, scaled(0.35), scaled(0.1)
    )
    emit("\n=== Ablation: epoll batch amortisation (2-tier) ===")
    rows = [
        [w.offered_qps, w.p99 * 1e3, wo.p99 * 1e3]
        for w, wo in zip(with_batching, without)
    ]
    emit(format_table(
        ["load QPS", "p99 ms (batching)", "p99 ms (no batching)"], rows
    ))
    # Without amortisation the epoll base cost is charged per request
    # and the app saturates earlier: the tail at the top load explodes.
    assert without[-1].p99 > 2 * with_batching[-1].p99


def ablate_netproc(duration, warmup):
    loads = (110_000, 125_000, 135_000)
    shared_irq = load_latency_sweep(
        load_balanced, loads, duration, warmup, scale_out=16
    )
    no_irq = load_latency_sweep(
        load_balanced, loads, duration, warmup, scale_out=16,
        interrupt_cores=0,
    )
    return shared_irq, no_irq


def test_ablation_shared_netproc(benchmark, emit):
    shared_irq, no_irq = run_once(
        benchmark, ablate_netproc, scaled(0.25), scaled(0.07)
    )
    emit("\n=== Ablation: shared soft_irq service (LB scale-out 16) ===")
    rows = [
        [a.offered_qps, a.p99 * 1e3, b.p99 * 1e3]
        for a, b in zip(shared_irq, no_irq)
    ]
    emit(format_table(
        ["load QPS", "p99 ms (soft_irq modelled)", "p99 ms (removed)"], rows
    ))
    sat_with = saturation_load(shared_irq, p99_limit=10e-3)
    sat_without = saturation_load(no_irq, p99_limit=10e-3)
    emit(f"\nsustained: {sat_with:,.0f} QPS with soft_irq vs "
         f"{sat_without:,.0f} QPS without")
    # Removing the interrupt bottleneck lets 16 webservers scale
    # (nearly) linearly — the sub-linear knee of Fig 8 disappears.
    assert sat_without > sat_with


def ablate_blocking(duration, warmup):
    # A tiny connection pool only matters when http/1.1 blocking holds
    # requests back: with 8 connections and a ~0.25 ms RTT, one
    # outstanding request per connection caps throughput near
    # 8/0.25ms = 32 kQPS, well under the 55 kQPS offered.
    kwargs = dict(client_connections=8, nginx_processes=8)
    blocked = measure_at_load(
        two_tier, 55_000, duration, warmup, http_blocking=True, **kwargs
    )
    unblocked = measure_at_load(
        two_tier, 55_000, duration, warmup, http_blocking=False, **kwargs
    )
    return blocked, unblocked


def test_ablation_http_blocking(benchmark, emit):
    blocked, unblocked = run_once(
        benchmark, ablate_blocking, scaled(0.35), scaled(0.1)
    )
    emit("\n=== Ablation: http/1.1 connection blocking "
         "(2-tier, 8 connections, 55k QPS) ===")
    emit(format_table(
        ["variant", "throughput", "p99 ms"],
        [
            ["blocking (one outstanding/conn)", round(blocked.throughput),
             blocked.p99 * 1e3],
            ["no blocking", round(unblocked.throughput),
             unblocked.p99 * 1e3],
        ],
    ))
    # With only 16 connections, blocking caps concurrency: the blocked
    # variant cannot sustain the offered load that the unblocked one can.
    assert blocked.throughput < 0.9 * unblocked.throughput


def ablate_thread_limit(duration, warmup):
    # 1 memcached thread vs 4 on a load memcached alone could absorb.
    one = measure_at_load(
        two_tier, 58_000, duration, warmup,
        nginx_processes=8, memcached_threads=1,
    )
    four = measure_at_load(
        two_tier, 58_000, duration, warmup,
        nginx_processes=8, memcached_threads=4,
    )
    return one, four


def test_ablation_thread_limits(benchmark, emit):
    one, four = run_once(
        benchmark, ablate_thread_limit, scaled(0.35), scaled(0.1)
    )
    emit("\n=== Ablation: memcached thread count at 58k QPS (2-tier) ===")
    emit(format_table(
        ["memcached threads", "throughput", "p99 ms"],
        [[1, round(one.throughput), one.p99 * 1e3],
         [4, round(four.throughput), four.p99 * 1e3]],
    ))
    # One memcached thread (capacity ~62k) is close to the edge here:
    # its tail is visibly worse than with four threads, while both keep
    # throughput — matching the paper's observation that memcached
    # resources do not move the saturation point (NGINX binds first).
    assert one.p99 > four.p99
    assert one.throughput > 0.9 * 58_000
