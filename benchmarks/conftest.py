"""Shared benchmark plumbing.

Every bench regenerates one figure/table of the paper's evaluation and
prints its rows/series to the terminal (bypassing pytest capture so the
output survives ``pytest benchmarks/ --benchmark-only | tee ...``).

Set ``REPRO_BENCH_SCALE`` to scale measurement windows: 1.0 (default)
finishes the whole suite in tens of minutes; larger values tighten the
statistics at proportional cost. Set ``REPRO_BENCH_JOBS`` to fan sweep
points out across worker processes (0 = all cores) — results are
identical to the serial run, only the wall clock changes.
"""

import json
import os
import time

import pytest

from repro.runner import default_jobs_from_env
from repro.runner.runstore import environment_info, write_json_atomic

#: Multiplier on measurement windows / request counts.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Worker processes for sweep fan-out (``REPRO_BENCH_JOBS``, default 1).
JOBS = default_jobs_from_env("REPRO_BENCH_JOBS")

#: Where :func:`bench_record` accumulates machine-readable results.
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_engine.json")

#: Where :func:`bench_record_shard` accumulates sharded-core results —
#: a separate artifact because sharded numbers carry their own
#: identity/tolerance contract (see docs/performance.md).
BENCH_SHARD_JSON = os.environ.get("REPRO_BENCH_SHARD_JSON", "BENCH_shard.json")

#: Companion manifest describing the run that produced ``BENCH_JSON``
#: (environment, scale/jobs knobs, wall time, recorded sections).
MANIFEST_JSON = os.environ.get("REPRO_BENCH_MANIFEST", "manifest.json")

_SESSION_START = time.time()


def _sections_of(path):
    try:
        with open(path) as fh:
            return sorted(k for k in json.load(fh) if k != "_meta")
    except (OSError, ValueError):
        return []


def pytest_sessionfinish(session, exitstatus):
    """Leave a ``manifest.json`` next to ``BENCH_engine.json`` so the CI
    artifact records *how* the numbers were produced, not just what
    they were."""
    write_json_atomic(MANIFEST_JSON, {
        "experiment": "benchmarks",
        "status": "completed" if exitstatus == 0 else f"exit={exitstatus}",
        "environment": environment_info(),
        "scale": SCALE,
        "jobs": JOBS,
        "wall_time_s": round(time.time() - _SESSION_START, 3),
        "sections": _sections_of(BENCH_JSON),
        "shard_sections": _sections_of(BENCH_SHARD_JSON),
    })


def _record_into(path: str, section: str, payload: dict) -> None:
    """Merge *payload* under *section* in the JSON artifact at *path*.

    The file accumulates across tests within a run (read-merge-write),
    giving CI one artifact with every recorded metric. Corrupt or
    missing files start fresh rather than failing the bench.
    """
    data = {}
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        pass
    data.setdefault(section, {}).update(payload)
    data["_meta"] = {"scale": SCALE, "jobs": JOBS}
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def bench_record(section: str, payload: dict) -> None:
    """Merge *payload* under *section* in ``BENCH_engine.json``."""
    _record_into(BENCH_JSON, section, payload)


def bench_record_shard(section: str, payload: dict) -> None:
    """Merge *payload* under *section* in ``BENCH_shard.json``."""
    _record_into(BENCH_SHARD_JSON, section, payload)


def scaled(seconds: float) -> float:
    return seconds * SCALE


def scaled_n(count: int) -> int:
    return max(10, int(count * SCALE))


@pytest.fixture
def emit(capfd):
    """Print to the real terminal, bypassing pytest capture."""

    def _emit(*parts):
        with capfd.disabled():
            print(*parts, flush=True)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Rounds/iterations stay at 1: these are whole-figure reproductions
    measured in minutes, not microbenchmarks.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def sweep_rows(pair):
    """Merge a {'sim': [...], 'real': [...]} sweep pair into table rows:
    load, sim mean/p99, real mean/p99 (ms)."""
    rows = []
    for sim_pt, real_pt in zip(pair["sim"], pair["real"]):
        rows.append([
            sim_pt.offered_qps,
            sim_pt.mean * 1e3, sim_pt.p99 * 1e3,
            real_pt.mean * 1e3, real_pt.p99 * 1e3,
        ])
    return rows


SWEEP_HEADERS = ["load QPS", "sim mean ms", "sim p99 ms",
                 "real mean ms", "real p99 ms"]


def presaturation_deviation(pair):
    """Mean |sim - real| of mean and p99 latency over pre-saturation
    points (the paper's accuracy metric, SSIV-A).

    A point is pre-saturation when both systems kept up with the
    offered load AND neither tail has left the low-load regime (p99
    within 5x of the lightest load's) — throughput alone can lag the
    knee by a point while queues are still filling the window.
    """
    sim_floor = pair["sim"][0].p99
    real_floor = pair["real"][0].p99
    mean_devs, tail_devs = [], []
    for sim_pt, real_pt in zip(pair["sim"], pair["real"]):
        if sim_pt.saturated or real_pt.saturated:
            continue
        if sim_pt.p99 > 5 * sim_floor or real_pt.p99 > 5 * real_floor:
            continue
        mean_devs.append(abs(sim_pt.mean - real_pt.mean))
        tail_devs.append(abs(sim_pt.p99 - real_pt.p99))
    if not mean_devs:
        return None, None
    return (sum(mean_devs) / len(mean_devs),
            sum(tail_devs) / len(tail_devs))
