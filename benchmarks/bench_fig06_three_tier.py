"""Figure 6: validation of the 3-tier NGINX-memcached-MongoDB
application.

Expected shape: real and simulated curves agree; saturation sits far
below the 2-tier app because MongoDB's disk bounds the miss path;
pre-saturation deviations are low single-digit milliseconds (paper:
1.55 ms mean / 2.32 ms tail).
"""

from repro.experiments.validation import fig6_three_tier
from repro.telemetry import format_table

from .conftest import (
    JOBS,
    SWEEP_HEADERS,
    presaturation_deviation,
    run_once,
    scaled,
    sweep_rows,
)


def test_fig06_three_tier(benchmark, emit):
    pair = run_once(
        benchmark, fig6_three_tier, duration=scaled(0.6), warmup=scaled(0.15),
        jobs=JOBS,
    )
    emit("\n=== Figure 6: 3-tier NGINX-memcached-MongoDB validation ===")
    emit(format_table(SWEEP_HEADERS, sweep_rows(pair)))
    mean_dev, tail_dev = presaturation_deviation(pair)
    if mean_dev is not None:
        emit(f"pre-saturation |sim-real|: mean {mean_dev*1e3:.2f} ms, "
             f"p99 {tail_dev*1e3:.2f} ms (paper: 1.55 ms / 2.32 ms)")
    # Disk-bound: the 3-tier must saturate far below the 2-tier's ~60k.
    assert pair["sim"][-1].offered_qps < 20_000
