"""Sharded-core scalability: the 500-leaf fan-out world across shard
counts.

Four guarantees of :mod:`repro.shard`, checked on every push:

* **Identity.** Under a draw-free propagation fabric, the sharded run
  is bit-identical to the vanilla single-simulator engine — same
  outcome counts, same latency samples — at every shard count.
* **Scalability.** On machines with enough cores, shards=4 processes
  events at >= 2x the single-shard rate on the 500-leaf world (the
  root shard batches its fan-in notifications per request, so no shard
  carries more than ~a quarter of the events).
* **No single-shard regression.** The slab-allocated event fast path
  keeps the vanilla engine's throughput within noise of the session
  baseline recorded by ``bench_scalability.py``.
* **Free supervision.** The shard supervisor's fault-tolerance
  machinery (liveness deadlines, barrier-replay journal) costs nothing
  measurable on a fault-free run, and supervised results are
  bit-identical to bare-proxy results.

Results land in ``BENCH_shard.json`` (see ``bench_record_shard``), a
separate artifact from ``BENCH_engine.json`` because sharded numbers
carry their own identity/tolerance contract.
"""

import json
import os
import time

import pytest

from repro.distributions import Deterministic
from repro.hardware import NetworkFabric
from repro.shard import measure_fanout_sharded, measure_fanout_vanilla
from repro.telemetry import format_table

from . import conftest as bench
from .bench_scalability import raw_engine_throughput
from .conftest import bench_record_shard, run_once, scaled_n

#: The benchmark world: 500 leaves, healthy, driven hard enough that
#: the event stream dwarfs the per-window sync cost. The 100 us
#: deterministic propagation keeps the run draw-free (bit-identity
#: holds at every shard count) and gives a 200 us round-trip lookahead
#: — about 1500 conservative windows over the run.
CLUSTER_SIZE = 500
QPS = 200.0
SEED = 3
PROPAGATION = 100e-6


def det_fabric():
    return NetworkFabric(propagation=Deterministic(PROPAGATION))


def measure(shards, requests, mode="auto"):
    start = time.perf_counter()
    if shards == 1:
        result = measure_fanout_vanilla(
            CLUSTER_SIZE, 0.0, qps=QPS, num_requests=requests,
            seed=SEED, network=det_fabric(),
        )
    else:
        result = measure_fanout_sharded(
            CLUSTER_SIZE, 0.0, qps=QPS, num_requests=requests,
            seed=SEED, shards=shards, network=det_fabric(), mode=mode,
        )
    result["wall_s"] = time.perf_counter() - start
    return result


def test_sharded_scalability(benchmark, emit):
    requests = scaled_n(60)

    def sweep():
        return {shards: measure(shards, requests) for shards in (1, 2, 4)}

    results = run_once(benchmark, sweep)
    vanilla = results[1]

    emit("\n=== Sharded core: 500-leaf fan-out scalability ===")
    rows = []
    payload = {}
    for shards, result in results.items():
        rate = result["events_total"] / result["wall_s"]
        speedup = result["wall_s"] and vanilla["wall_s"] / result["wall_s"]
        rows.append([
            shards, result["mode"], result["events_total"],
            round(result["wall_s"], 2), round(rate / 1e3),
            result["rounds"], result["messages"], round(speedup, 2),
        ])
        payload[str(shards)] = {
            "mode": result["mode"],
            "events_total": result["events_total"],
            "wall_s": round(result["wall_s"], 4),
            "events_per_s": round(rate),
            "rounds": result["rounds"],
            "messages": result["messages"],
            "speedup_vs_1": round(speedup, 4),
            "requests": result["requests"],
        }
    emit(format_table(
        ["shards", "mode", "events", "wall s", "k ev/s",
         "rounds", "msgs", "speedup"],
        rows,
    ))
    bench_record_shard("fanout_500", payload)
    bench_record_shard("config", {
        "cluster_size": CLUSTER_SIZE,
        "qps": QPS,
        "requests": requests,
        "seed": SEED,
        "propagation_s": PROPAGATION,
        "cpu_count": os.cpu_count(),
    })

    # Identity: deterministic fabric => bit-identical to vanilla at
    # every shard count, not just statistically close.
    for shards in (2, 4):
        sharded = results[shards]
        assert sharded["outcomes"] == vanilla["outcomes"], (
            f"shards={shards} outcome counts diverged from shards=1"
        )
        assert sharded["latencies"] == vanilla["latencies"], (
            f"shards={shards} latency samples diverged from shards=1"
        )
        assert sharded["requests_sent"] == vanilla["requests_sent"]

    # Scalability: only meaningful where 4 workers can actually run in
    # parallel (and actually ran as processes).
    cores = os.cpu_count() or 1
    speedup4 = vanilla["wall_s"] / results[4]["wall_s"]
    if cores >= 4 and results[4]["mode"] == "process":
        assert speedup4 >= 2.0, (
            f"shards=4 speedup {speedup4:.2f}x < 2x on a {cores}-core "
            f"machine (wall {results[4]['wall_s']:.2f}s vs vanilla "
            f"{vanilla['wall_s']:.2f}s)"
        )
    else:
        emit(f"(speedup assertion skipped: {cores} core(s), "
             f"shards=4 ran {results[4]['mode']})")


def test_single_shard_throughput_no_worse_than_baseline(benchmark, emit):
    rates = run_once(
        benchmark,
        lambda: [raw_engine_throughput(100_000) for _ in range(3)],
    )
    rate = max(rates)
    spread = (max(rates) - min(rates)) / max(rates)
    tolerance = max(0.02, 2.0 * spread)
    emit("\n=== Sharded core: single-shard engine guard ===")
    emit(f"event loop: {rate / 1e3:.0f}k events/s "
         f"(spread {spread:.1%}, tolerance {tolerance:.1%})")
    payload = {
        "events_per_s": round(rate),
        "noise_spread": round(spread, 4),
    }
    baseline = None
    try:
        fresh = os.path.getmtime(bench.BENCH_JSON) >= bench._SESSION_START
        if fresh:
            with open(bench.BENCH_JSON) as fh:
                baseline = json.load(fh)["engine"]["raw_events_per_s"]
    except (OSError, ValueError, KeyError):
        baseline = None
    if baseline is not None:
        payload["baseline_events_per_s"] = baseline
        payload["ratio"] = round(rate / baseline, 4)
        emit(f"baseline (this session): {baseline / 1e3:.0f}k events/s "
             f"-> ratio {rate / baseline:.3f}")
        assert rate >= baseline * (1.0 - tolerance), (
            f"single-shard engine rate {rate:.0f}/s fell more than "
            f"{tolerance:.1%} below the session baseline {baseline:.0f}/s "
            f"— the event slab must not tax the vanilla path"
        )
    else:
        emit("no fresh BENCH_engine.json baseline in this session; "
             "recorded the measurement only")
    bench_record_shard("single_shard_guard", payload)


def test_supervisor_fault_free_overhead(benchmark, emit):
    """The shard supervisor (liveness deadlines + barrier-replay
    journal) must be free when nothing fails: the supervised process
    run stays within noise of the bare-proxy run, and its results are
    bit-identical. Guards the journal's per-round recording cost."""
    from repro.errors import ShardingError
    from repro.shard.fanout import _fanout_specs, plan_fanout_shards
    from repro.shard.worker import run_sharded

    requests = scaled_n(40)
    fabric = det_fabric()
    plan = plan_fanout_shards(CLUSTER_SIZE, 4, fabric)
    if not plan.sharded:  # pragma: no cover - deterministic fabric
        pytest.skip(f"cannot shard: {plan.fallback_reason}")
    specs, edges = _fanout_specs(
        plan, cluster_size=CLUSTER_SIZE, slow_fraction=0.0,
        slow_factor=10.0, mean_service=1e-3, seed=SEED, qps=QPS,
        fabric=fabric, num_requests=requests,
    )

    def timed(supervise):
        start = time.perf_counter()
        results, coordinator = run_sharded(
            specs, edges, mode="process", supervise=supervise
        )
        wall = time.perf_counter() - start
        return results, coordinator, wall

    def sweep():
        # Interleave the modes so machine noise hits both equally.
        runs = {"never": [], "auto": []}
        for _ in range(2):
            for supervise in ("never", "auto"):
                runs[supervise].append(timed(supervise))
        return runs

    try:
        runs = run_once(benchmark, sweep)
    except ShardingError as exc:  # pragma: no cover - no processes
        pytest.skip(f"process workers unavailable: {exc}")

    bare_results, bare_coord, _ = runs["never"][0]
    sup_results, sup_coord, _ = runs["auto"][0]
    assert sup_coord.supervised and not bare_coord.supervised
    assert sup_coord.recovery == {
        "restarts": 0, "replayed_rounds": 0, "per_shard": {},
    }
    assert sup_results[0]["latencies"] == bare_results[0]["latencies"], \
        "supervision changed the results of a fault-free run"
    assert sup_results[0]["outcomes"] == bare_results[0]["outcomes"]

    bare_wall = min(wall for _, _, wall in runs["never"])
    sup_wall = min(wall for _, _, wall in runs["auto"])
    walls = [wall for trials in runs.values() for _, _, wall in trials]
    spread = (max(walls) - min(walls)) / max(walls)
    overhead = sup_wall / bare_wall - 1.0
    # Pipe round-trips dominate; the journal's in-memory appends and
    # digests are noise. Tolerance floors at 15% so a loaded CI runner
    # cannot flake the guard, and widens with the observed spread.
    tolerance = max(0.15, 2.0 * spread)
    emit("\n=== Sharded core: supervisor fault-free overhead ===")
    emit(f"bare {bare_wall:.2f}s vs supervised {sup_wall:.2f}s "
         f"-> overhead {overhead:+.1%} (spread {spread:.1%}, "
         f"tolerance {tolerance:.1%})")
    bench_record_shard("supervisor_overhead", {
        "bare_wall_s": round(bare_wall, 4),
        "supervised_wall_s": round(sup_wall, 4),
        "overhead": round(overhead, 4),
        "noise_spread": round(spread, 4),
        "rounds": sup_coord.rounds,
        "requests": requests,
    })
    assert overhead <= tolerance, (
        f"fault-free supervision cost {overhead:.1%} exceeds "
        f"{tolerance:.1%} — the barrier-replay journal must not tax "
        f"the happy path"
    )


def test_adapter_social_network(benchmark, emit):
    """The generic shard adapter on the Social Network world.

    Three contracts (ISSUE 9): ``shards=1`` stays bit-identical to the
    vanilla engine, shard counts 2 and 4 stay bit-identical to *each
    other* under the draw-free fabric (at this load same-instant queue
    ties occur, where the adapter's tie order is shard-invariant but
    not vanilla's — see the ``repro.shard.adapter`` contracts), and
    with telemetry off the per-shard ``finalize()`` payloads ship
    **no** trace/SLO freight — the blocked-knob lift must cost nothing
    when the knobs are unused."""
    from repro.apps import social_network
    from repro.experiments.loadsweep import measure_vanilla_point
    from repro.runner import derive_seed
    from repro.shard.adapter import (
        build_world_shard_host,
        sharded_load_point,
    )
    from repro.shard.partition import plan_shards
    from repro.shard.worker import run_sharded

    qps, duration, warmup = 4000.0, 0.2, 0.05
    seed = derive_seed(SEED, qps)
    fabric_kwargs = {"network": det_fabric()}

    def point(shards, mode="auto"):
        start = time.perf_counter()
        if shards == 1:
            result = measure_vanilla_point(
                social_network, qps, duration, warmup, seed,
                **fabric_kwargs,
            )
        else:
            result = sharded_load_point(
                social_network, qps, duration, warmup, seed, shards,
                mode=mode, **fabric_kwargs,
            )
        return result, time.perf_counter() - start

    def sweep():
        return {shards: point(shards) for shards in (1, 2, 4)}

    results = run_once(benchmark, sweep)
    vanilla_point, vanilla_wall = results[1]
    two_point, two_wall = results[2]
    adapter_point, adapter_wall = results[4]

    emit("\n=== Sharded core: Social Network via the generic adapter ===")
    emit(f"shards=1 {vanilla_wall:.2f}s vs shards=2 {two_wall:.2f}s vs "
         f"shards=4 {adapter_wall:.2f}s "
         f"({adapter_point.completed} completions)")
    bench_record_shard("social_adapter", {
        "qps": qps,
        "duration_s": duration,
        "completed": adapter_point.completed,
        "p99_s": adapter_point.p99,
        "vanilla_wall_s": round(vanilla_wall, 4),
        "shards2_wall_s": round(two_wall, 4),
        "shards4_wall_s": round(adapter_wall, 4),
        "shard_counts_identical": two_point == adapter_point,
    })

    # Identity contracts: N-invariance, and shards=1 == vanilla.
    assert two_point == adapter_point, (
        "adapter-built Social Network diverged between shard counts "
        "under a draw-free fabric"
    )
    explicit_one = sharded_load_point(
        social_network, qps, duration, warmup, seed, 1,
        mode="inline", **fabric_kwargs,
    )
    assert explicit_one == vanilla_point, (
        "shards=1 through the adapter must be bit-identical to vanilla"
    )

    # Telemetry-off shipping guard: no trace/SLO freight in any
    # per-shard result when the knobs are off.
    probe = social_network(seed=seed, **fabric_kwargs)
    plan = plan_shards(probe.cluster.machine_names, 4, probe.cluster.network)
    assert plan.sharded
    common = dict(
        builder=social_network, world_kwargs=dict(fabric_kwargs),
        seed=seed, assignments=dict(plan.assignments),
        lookahead=plan.lookahead, qps=qps, duration=duration,
        warmup=warmup, client_machine="client", mix=None, trace=False,
        slo=None,
    )
    specs = [
        (build_world_shard_host, dict(common, shard_id=i))
        for i in range(plan.num_shards)
    ]
    edges = {
        (i, j): plan.lookahead
        for i in range(plan.num_shards)
        for j in range(plan.num_shards)
        if i != j
    }
    raw_results, _ = run_sharded(specs, edges, mode="inline")
    for raw in raw_results:
        assert "trace_spans" not in raw and "traces" not in raw, (
            "telemetry-off run shipped trace freight cross-shard"
        )
        assert "slo" not in raw


@pytest.mark.parametrize("shards", [2])
def test_sharded_identity_smoke(shards, benchmark, emit):
    """A fast standalone identity check (CI perf-smoke runs this plus
    the full scalability bench): shards=N and shards=1 agree exactly
    on outcome counts under the deterministic fabric."""
    requests = max(10, scaled_n(60) // 3)
    vanilla = measure(1, requests)
    sharded = run_once(benchmark, measure, shards, requests)
    assert sharded["outcomes"] == vanilla["outcomes"]
    assert sharded["latencies"] == vanilla["latencies"]
    emit(f"\nshards={shards} identity smoke: "
         f"{sharded['requests']} requests, outcomes "
         f"{sharded['outcomes']} == vanilla")
