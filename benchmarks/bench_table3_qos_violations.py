"""Table III: power-management QoS violation rates vs decision
interval.

Expected shape: longer decision intervals react later to load rises and
violate QoS more often; the real system violates at least as often as
the simulated one at every interval (paper: sim 0.6/2.2/5.0% vs real
1.5/2.7/6.0% for 0.1/0.5/1 s).
"""

from repro.experiments.power_mgmt import violation_table
from repro.telemetry import format_table
from repro.testbed import RealismConfig

from .conftest import run_once, scaled

INTERVALS = (0.1, 0.5, 1.0)
PAPER = {0.1: (0.6, 1.5), 0.5: (2.2, 2.7), 1.0: (5.0, 6.0)}


def run_both(duration):
    sim_rows = violation_table(INTERVALS, duration=duration, seed=2)
    real_rows = violation_table(
        INTERVALS, duration=duration, seed=9, realism=RealismConfig()
    )
    return sim_rows, real_rows


def test_table3_qos_violations(benchmark, emit):
    duration = max(60.0, scaled(60.0))
    sim_rows, real_rows = run_once(benchmark, run_both, duration)
    emit("\n=== Table III: QoS violation rates (%) ===")
    rows = []
    for interval in INTERVALS:
        rows.append([
            f"{interval:g}s",
            round(sim_rows[interval].violation_rate * 100, 1),
            round(real_rows[interval].violation_rate * 100, 1),
            f"{PAPER[interval][0]} / {PAPER[interval][1]}",
        ])
    emit(format_table(
        ["decision interval", "simulated %", "real %", "paper sim/real %"],
        rows,
    ))
    # Shape checks: the longest interval violates more than the
    # shortest, and every rate is a small fraction of the intervals.
    assert (
        sim_rows[1.0].violation_rate + real_rows[1.0].violation_rate
        >= sim_rows[0.1].violation_rate + real_rows[0.1].violation_rate
    )
    for result in list(sim_rows.values()) + list(real_rows.values()):
        assert result.violation_rate < 0.5
        assert result.decisions > 0
