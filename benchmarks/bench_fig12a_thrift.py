"""Figure 12(a): validation of RPC request simulation (Apache Thrift
echo server).

Expected shape: both systems saturate just past 50 kQPS with low-load
latency under 100 us; beyond saturation the REAL system's latency
climbs faster than the simulator's, because only the real system pays
request timeouts and reconnection overhead (paper SSIV-C).
"""

from repro.experiments.validation import fig12a_thrift
from repro.telemetry import format_table

from .conftest import JOBS, SWEEP_HEADERS, run_once, scaled, sweep_rows


def test_fig12a_thrift(benchmark, emit):
    pair = run_once(
        benchmark, fig12a_thrift, duration=scaled(0.4), warmup=scaled(0.1),
        jobs=JOBS,
    )
    emit("\n=== Figure 12(a): Thrift echo RPC validation ===")
    emit(format_table(SWEEP_HEADERS, sweep_rows(pair)))

    low_load = pair["sim"][0]
    emit(f"\nlow-load p50: {low_load.p50*1e6:.0f} us "
         f"(paper: < 100 us incl. network)")
    assert low_load.p50 < 100e-6

    # Past saturation the real system blows up faster (timeouts).
    sim_sat = pair["sim"][-1]
    real_sat = pair["real"][-1]
    emit(f"post-saturation p99: sim {sim_sat.p99*1e3:.1f} ms vs "
         f"real {real_sat.p99*1e3:.1f} ms (real should be larger)")
    assert real_sat.p99 > sim_sat.p99
