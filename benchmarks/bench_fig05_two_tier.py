"""Figure 5: validation of the 2-tier NGINX-memcached application
across thread/process configurations.

Expected shape (paper SSIV-A): simulated and "real" load-latency curves
agree up to a shared saturation point; saturation scales with the NGINX
process count and is insensitive to memcached threads; pre-saturation
deviations are fractions of a millisecond.
"""

from repro.experiments.validation import FIG5_CONFIGS, fig5_two_tier
from repro.telemetry import format_table

from .conftest import (
    JOBS,
    SWEEP_HEADERS,
    presaturation_deviation,
    run_once,
    scaled,
    sweep_rows,
)


def test_fig05_two_tier(benchmark, emit):
    results = run_once(
        benchmark, fig5_two_tier, duration=scaled(0.4), warmup=scaled(0.1),
        jobs=JOBS,
    )
    emit("\n=== Figure 5: 2-tier NGINX-memcached validation ===")
    for config, pair in results.items():
        emit(format_table(SWEEP_HEADERS, sweep_rows(pair),
                          title=f"\n[{config}]"))
        mean_dev, tail_dev = presaturation_deviation(pair)
        if mean_dev is not None:
            emit(f"pre-saturation |sim-real|: mean {mean_dev*1e3:.2f} ms, "
                 f"p99 {tail_dev*1e3:.2f} ms "
                 f"(paper: 0.17 ms / 0.83 ms)")
    assert set(results) == {
        f"nginx={p}p,memcached={t}t" for p, t in FIG5_CONFIGS
    }
