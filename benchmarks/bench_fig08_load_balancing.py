"""Figure 8: validation of load balancing across scale-out factors.

Expected shape: saturation scales linearly 35k -> 70k QPS from 4 to 8
webservers and sub-linearly to ~120k at 16, where the cores handling
network interrupts (soft_irq) saturate before the NGINX instances.
"""

from repro.experiments import saturation_load
from repro.experiments.validation import fig8_load_balancing
from repro.telemetry import format_table

from .conftest import JOBS, SWEEP_HEADERS, run_once, scaled, sweep_rows


def test_fig08_load_balancing(benchmark, emit):
    results = run_once(
        benchmark, fig8_load_balancing,
        duration=scaled(0.3), warmup=scaled(0.08), jobs=JOBS,
    )
    emit("\n=== Figure 8: load balancing validation (p99 vs load) ===")
    saturations = {}
    for scale_out, pair in results.items():
        emit(format_table(SWEEP_HEADERS, sweep_rows(pair),
                          title=f"\n[scale-out = {scale_out}]"))
        saturations[scale_out] = saturation_load(
            pair["sim"], p99_limit=10e-3
        )
    emit(format_table(
        ["scale-out", "sustained QPS (sim)", "paper"],
        [[so, saturations[so], ref]
         for so, ref in [(4, "35k"), (8, "70k"), (16, "120k")]],
        title="\nSaturation points",
    ))
    # Linear 4 -> 8, sub-linear 8 -> 16 (the soft_irq ceiling).
    assert saturations[8] > 1.7 * saturations[4]
    assert saturations[16] < 1.9 * saturations[8]
