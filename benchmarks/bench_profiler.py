"""Engine self-profiler: overhead guard and hotspot artifact.

Two guarantees of the profiling layer, checked on every push:

* **A disabled profiler is free.** ``Simulator.profiler`` defaults to
  ``None`` and the run loop pays one attribute check per call; the raw
  engine event rate must stay within measurement noise of the
  ``bench_scalability.py`` baseline recorded earlier in the same
  session (same 2%-or-observed-noise budget as ``bench_tracing.py``).
* **An enabled profiler changes nothing but the clock.** A profiled
  simulation produces latency statistics identical to the unprofiled
  run, and its hotspot summary lands in ``BENCH_engine.json`` plus a
  standalone JSON artifact for CI upload.
"""

import json
import os
from pathlib import Path

from repro.apps import two_tier
from repro.engine import EngineProfiler
from repro.experiments.loadsweep import measure_at_load

from . import conftest as bench
from .bench_scalability import raw_engine_throughput
from .conftest import bench_record, run_once, scaled

#: Where the profiled run writes its standalone hotspot artifact.
PROFILE_JSON = Path(
    os.environ.get("REPRO_PROFILE_JSON", "trace_artifacts/engine_profile.json")
)

QPS = 20_000


def test_profiler_off_throughput_within_noise(benchmark, emit):
    rates = run_once(
        benchmark,
        lambda: [raw_engine_throughput(100_000) for _ in range(3)],
    )
    rate = max(rates)
    spread = (max(rates) - min(rates)) / max(rates)
    tolerance = max(0.02, 2.0 * spread)
    emit("\n=== Profiler: profiler-off engine throughput ===")
    emit(f"event loop: {rate / 1e3:.0f}k events/s "
         f"(spread {spread:.1%}, tolerance {tolerance:.1%})")
    payload = {
        "unprofiled_events_per_s": round(rate),
        "noise_spread": round(spread, 4),
    }
    baseline = None
    try:
        fresh = os.path.getmtime(bench.BENCH_JSON) >= bench._SESSION_START
        if fresh:
            with open(bench.BENCH_JSON) as fh:
                baseline = json.load(fh)["engine"]["raw_events_per_s"]
    except (OSError, ValueError, KeyError):
        baseline = None
    if baseline is not None:
        payload["baseline_events_per_s"] = baseline
        payload["ratio"] = round(rate / baseline, 4)
        emit(f"baseline (this session): {baseline / 1e3:.0f}k events/s "
             f"-> ratio {rate / baseline:.3f}")
        assert rate >= baseline * (1.0 - tolerance), (
            f"profiler-off engine rate {rate:.0f}/s fell more than "
            f"{tolerance:.1%} below the session baseline {baseline:.0f}/s"
        )
    else:
        emit("no fresh BENCH_engine.json baseline in this session; "
             "recorded the measurement only")
    bench_record("profiler", payload)


def _profiled_point(profiler):
    def build(seed):
        world = two_tier(seed=seed)
        world.sim.profiler = profiler
        return world

    return measure_at_load(
        build, QPS, duration=scaled(0.3), warmup=scaled(0.075)
    )


def test_profiled_run_is_bit_identical_and_writes_artifact(benchmark, emit):
    profiler = EngineProfiler()
    profiled = run_once(benchmark, _profiled_point, profiler)
    plain = measure_at_load(
        two_tier, QPS, duration=scaled(0.3), warmup=scaled(0.075)
    )
    # Wall-clock profiling must not leak into the simulation: every
    # statistic of the profiled run matches the unprofiled one exactly.
    assert profiled.completed == plain.completed
    assert profiled.mean == plain.mean
    assert profiled.p99 == plain.p99

    summary = profiler.summary(top=10)
    assert summary["events"] > 0
    assert summary["hotspots"], "profiled run recorded no hotspots"

    PROFILE_JSON.parent.mkdir(parents=True, exist_ok=True)
    profiler.write(PROFILE_JSON)
    assert PROFILE_JSON.exists()

    emit("\n=== Profiler: profiled two-tier point ===")
    emit(f"{summary['events']} events, "
         f"{summary['events_per_sec'] / 1e3:.0f}k events/s of handler "
         f"time -> {PROFILE_JSON}")
    for spot in summary["hotspots"][:3]:
        emit(f"  {spot['key']}: {spot['count']}x, "
             f"{spot['mean_us']:.1f}us mean")
    bench_record("profiler", {
        "profiled_events": summary["events"],
        "handler_events_per_s": round(summary["events_per_sec"]),
        "top_hotspot": summary["hotspots"][0]["key"],
    })
