"""Extension use case: horizontal autoscaling under diurnal load.

Not a paper figure — the cluster-management study the paper's
introduction motivates. Compares an autoscaled webserver tier against
static provisioning at the same peak capacity: the autoscaler should
cut provisioned core-seconds substantially while keeping the p99 in the
same regime.
"""

from repro.apps.base import add_client_machine, new_world
from repro.apps.nginx import SERVE_PATH, make_nginx
from repro.hardware import Machine
from repro.scaling import ActiveSetBalancer, AutoScaler
from repro.telemetry import format_table
from repro.topology import PathNode, PathTree
from repro.workload import DiurnalPattern, OpenLoopClient

from .conftest import run_once, scaled

REPLICAS = 8


def build_tier(seed):
    world = new_world(seed=seed)
    add_client_machine(world)
    world.cluster.add_machine(Machine("server0", 24))
    instances = [
        make_nginx(world, "server0", f"web{i}", processes=1, tier="web")
        for i in range(REPLICAS)
    ]
    world.dispatcher.add_tree(
        PathTree("serve").chain(PathNode("web", "web", path_name=SERVE_PATH))
    )
    return world, instances


def run_case(autoscale, duration):
    world, instances = build_tier(seed=3)
    pattern = DiurnalPattern(low=4_000, high=32_000, period=duration / 2)
    scaler = None
    if autoscale:
        balancer = ActiveSetBalancer(REPLICAS, initial_active=2)
        world.deployment._balancers["web"] = balancer
        scaler = AutoScaler(
            world.sim, instances, balancer,
            decision_interval=0.25, low_watermark=0.35, high_watermark=0.7,
        )
        scaler.start()
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=pattern, stop_at=duration
    )
    client.start()
    world.sim.run(until=duration)
    core_seconds = (
        scaler.core_seconds_active() if scaler else REPLICAS * duration
    )
    return {
        "p50": client.latencies.p50(since=duration * 0.1),
        "p99": client.latencies.p99(since=duration * 0.1),
        "completed": client.requests_completed,
        "core_seconds": core_seconds,
    }


def run_both(duration):
    return run_case(False, duration), run_case(True, duration)


def test_autoscaling_use_case(benchmark, emit):
    duration = max(30.0, scaled(30.0))
    static, scaled_case = run_once(benchmark, run_both, duration)
    emit("\n=== Use case: horizontal autoscaling under diurnal load ===")
    emit(format_table(
        ["variant", "p50 ms", "p99 ms", "core-seconds"],
        [
            ["static 8 replicas", static["p50"] * 1e3, static["p99"] * 1e3,
             round(static["core_seconds"])],
            ["autoscaled (0.35-0.7 band)", scaled_case["p50"] * 1e3,
             scaled_case["p99"] * 1e3, round(scaled_case["core_seconds"])],
        ],
    ))
    savings = 1 - scaled_case["core_seconds"] / static["core_seconds"]
    emit(f"capacity saved: {savings:.0%}")
    # The autoscaler must save meaningful capacity...
    assert savings > 0.3
    # ...without leaving the latency regime (within 5x of static p99).
    assert scaled_case["p99"] < 5 * static["p99"]