"""Tracing overhead and export smoke.

Two guarantees of the observability layer, checked on every push:

* **Disabled tracing is free.** Worlds build with no tracer and no
  metrics registry attached, and the raw engine event rate stays
  within measurement noise of the baseline ``bench_scalability.py``
  recorded earlier in the same session (the <2% regression budget,
  widened only by the observed run-to-run noise of the machine).
* **Enabled tracing exports working artifacts.** A trace-enabled sweep
  point writes Perfetto + OTLP JSON (uploaded as a CI artifact); the
  Perfetto file must be well-formed ``trace_event`` JSON and the OTLP
  file must decode back into span-carrying traces.
"""

import json
import os
from pathlib import Path

from repro.apps import two_tier
from repro.experiments.loadsweep import measure_at_load
from repro.telemetry import TraceConfig, read_otlp

from . import conftest as bench
from .bench_scalability import raw_engine_throughput
from .conftest import bench_record, run_once, scaled

#: Where the trace-enabled sweep exports its Perfetto/OTLP artifacts.
TRACE_DIR = Path(os.environ.get("REPRO_TRACE_DIR", "trace_artifacts"))

QPS = 20_000


def test_disabled_tracing_stays_off_the_hot_path():
    world = two_tier(seed=1)
    assert world.dispatcher.tracer is None
    assert world.dispatcher.trace is False
    assert world.dispatcher.metrics is None
    for instance in world.deployment.all_instances:
        assert instance.metrics is None


def test_trace_disabled_throughput_within_noise(benchmark, emit):
    rates = run_once(
        benchmark,
        lambda: [raw_engine_throughput(100_000) for _ in range(3)],
    )
    rate = max(rates)
    spread = (max(rates) - min(rates)) / max(rates)
    # The regression budget is 2%; machines whose repeated measurements
    # disagree by more than that get the benefit of their own noise.
    tolerance = max(0.02, 2.0 * spread)
    emit("\n=== Tracing: trace-disabled engine throughput ===")
    emit(f"event loop: {rate / 1e3:.0f}k events/s "
         f"(spread {spread:.1%}, tolerance {tolerance:.1%})")
    payload = {
        "untraced_events_per_s": round(rate),
        "noise_spread": round(spread, 4),
    }
    baseline = None
    try:
        fresh = os.path.getmtime(bench.BENCH_JSON) >= bench._SESSION_START
        if fresh:
            with open(bench.BENCH_JSON) as fh:
                baseline = json.load(fh)["engine"]["raw_events_per_s"]
    except (OSError, ValueError, KeyError):
        baseline = None
    if baseline is not None:
        # Same machine, same session: the only difference from the
        # baseline measurement is that the telemetry layer is loaded.
        payload["baseline_events_per_s"] = baseline
        payload["ratio"] = round(rate / baseline, 4)
        emit(f"baseline (this session): {baseline / 1e3:.0f}k events/s "
             f"-> ratio {rate / baseline:.3f}")
        assert rate >= baseline * (1.0 - tolerance), (
            f"trace-disabled engine rate {rate:.0f}/s fell more than "
            f"{tolerance:.1%} below the session baseline {baseline:.0f}/s"
        )
    else:
        emit("no fresh BENCH_engine.json baseline in this session; "
             "recorded the measurement only")
    bench_record("tracing", payload)


def test_trace_enabled_sweep_exports_artifacts(benchmark, emit):
    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    point = run_once(
        benchmark,
        measure_at_load,
        two_tier,
        QPS,
        duration=scaled(0.3),
        warmup=scaled(0.075),
        trace=TraceConfig(sample_rate=0.1),
        trace_dir=TRACE_DIR,
    )
    assert point.completed > 0
    perfetto_path = TRACE_DIR / f"qps{QPS}.perfetto.json"
    otlp_path = TRACE_DIR / f"qps{QPS}.otlp.json"
    assert perfetto_path.exists() and otlp_path.exists()

    doc = json.loads(perfetto_path.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "trace-enabled sweep produced no span events"
    for event in spans:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert event["dur"] >= 0

    traces = read_otlp(otlp_path)
    assert traces and all(t.spans for t in traces)

    emit("\n=== Tracing: trace-enabled sweep export ===")
    emit(f"{QPS} qps point: {point.completed} completed, "
         f"{len(traces)} traces sampled (10%), "
         f"{len(spans)} spans -> {perfetto_path}")
    bench_record("tracing", {
        "sampled_traces": len(traces),
        "exported_spans": len(spans),
        "perfetto_bytes": perfetto_path.stat().st_size,
    })
