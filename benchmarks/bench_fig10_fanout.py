"""Figure 10: validation of request fanout.

Expected shape: for every fanout factor the simulated and real curves
agree; as fanout grows the tail rises and the saturation load decreases
slightly — the probability that one slow leaf drags the synchronised
response grows with the fan-in width.
"""

from repro.experiments.validation import fig10_fanout
from repro.telemetry import format_table

from .conftest import JOBS, SWEEP_HEADERS, run_once, scaled, sweep_rows


def test_fig10_fanout(benchmark, emit):
    results = run_once(
        benchmark, fig10_fanout, duration=scaled(0.4), warmup=scaled(0.1),
        jobs=JOBS,
    )
    emit("\n=== Figure 10: request fanout validation (p99 vs load) ===")
    for fanout_factor, pair in results.items():
        emit(format_table(SWEEP_HEADERS, sweep_rows(pair),
                          title=f"\n[fanout = {fanout_factor}]"))
    # Tail grows with fanout at the same moderate load.
    mid = 2  # index of the middle load point
    p99s = {fo: pair["sim"][mid].p99 for fo, pair in results.items()}
    emit(f"\np99 at {results[4]['sim'][mid].offered_qps:.0f} QPS by fanout: "
         + ", ".join(f"{fo}: {p*1e3:.2f}ms" for fo, p in sorted(p99s.items())))
    assert p99s[16] > p99s[4]
